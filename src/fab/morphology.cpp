#include "fab/morphology.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace boson::fab {

namespace {

std::vector<std::pair<int, int>> disk_offsets(double radius_cells) {
  require(radius_cells > 0.0, "morphology: radius must be positive");
  const int r = static_cast<int>(std::ceil(radius_cells));
  std::vector<std::pair<int, int>> offsets;
  for (int dx = -r; dx <= r; ++dx)
    for (int dy = -r; dy <= r; ++dy)
      if (dx * dx + dy * dy <= radius_cells * radius_cells + 1e-12)
        offsets.emplace_back(dx, dy);
  return offsets;
}

/// Hard morphological extremum with clamped (replicate) boundary handling.
template <class Compare>
array2d<double> hard_extremum(const array2d<double>& in, double radius_cells,
                              Compare better) {
  const auto offsets = disk_offsets(radius_cells);
  array2d<double> out(in.nx(), in.ny());
  const auto nx = static_cast<int>(in.nx());
  const auto ny = static_cast<int>(in.ny());
  for (int x = 0; x < nx; ++x) {
    for (int y = 0; y < ny; ++y) {
      double best = in(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
      for (const auto& [dx, dy] : offsets) {
        const int sx = std::clamp(x + dx, 0, nx - 1);
        const int sy = std::clamp(y + dy, 0, ny - 1);
        const double v = in(static_cast<std::size_t>(sx), static_cast<std::size_t>(sy));
        if (better(v, best)) best = v;
      }
      out(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) = best;
    }
  }
  return out;
}

}  // namespace

array2d<double> dilate_hard(const array2d<double>& in, double radius_cells) {
  return hard_extremum(in, radius_cells, [](double a, double b) { return a > b; });
}

array2d<double> erode_hard(const array2d<double>& in, double radius_cells) {
  return hard_extremum(in, radius_cells, [](double a, double b) { return a < b; });
}

soft_morphology::soft_morphology(double radius_cells, double power)
    : radius_(radius_cells), power_(power), offsets_(disk_offsets(radius_cells)) {
  require(power >= 2.0, "soft_morphology: power must be >= 2");
}

array2d<double> soft_morphology::forward(const array2d<double>& in, bool dilate) const {
  array2d<double> out(in.nx(), in.ny());
  const auto nx = static_cast<int>(in.nx());
  const auto ny = static_cast<int>(in.ny());
  const double inv_count = 1.0 / static_cast<double>(offsets_.size());
  constexpr double floor_value = 1e-9;  // keeps the p-th root differentiable at 0

  for (int x = 0; x < nx; ++x) {
    for (int y = 0; y < ny; ++y) {
      double acc = 0.0;
      for (const auto& [dx, dy] : offsets_) {
        const int sx = std::clamp(x + dx, 0, nx - 1);
        const int sy = std::clamp(y + dy, 0, ny - 1);
        double v = in(static_cast<std::size_t>(sx), static_cast<std::size_t>(sy));
        if (!dilate) v = 1.0 - v;
        acc += std::pow(std::max(v, floor_value), power_);
      }
      const double mean_p = std::pow(acc * inv_count, 1.0 / power_);
      out(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) =
          dilate ? mean_p : 1.0 - mean_p;
    }
  }
  return out;
}

void soft_morphology::backward(const array2d<double>& in, const array2d<double>& d_out,
                               bool dilate, array2d<double>& d_in) const {
  require(in.same_shape(d_out), "soft_morphology: shape mismatch");
  if (!d_in.same_shape(in)) d_in = array2d<double>(in.nx(), in.ny(), 0.0);
  const auto nx = static_cast<int>(in.nx());
  const auto ny = static_cast<int>(in.ny());
  const double inv_count = 1.0 / static_cast<double>(offsets_.size());
  constexpr double floor_value = 1e-9;

  for (int x = 0; x < nx; ++x) {
    for (int y = 0; y < ny; ++y) {
      const double g = d_out(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
      if (g == 0.0) continue;
      // Recompute the local p-mean, then distribute the gradient:
      // d out / d v_j = (1/N) v_j^{p-1} * (mean_p)^{1-p}.
      double acc = 0.0;
      for (const auto& [dx, dy] : offsets_) {
        const int sx = std::clamp(x + dx, 0, nx - 1);
        const int sy = std::clamp(y + dy, 0, ny - 1);
        double v = in(static_cast<std::size_t>(sx), static_cast<std::size_t>(sy));
        if (!dilate) v = 1.0 - v;
        acc += std::pow(std::max(v, floor_value), power_);
      }
      const double mean_p = std::pow(acc * inv_count, 1.0 / power_);
      const double common = std::pow(mean_p, 1.0 - power_) * inv_count;
      for (const auto& [dx, dy] : offsets_) {
        const int sx = std::clamp(x + dx, 0, nx - 1);
        const int sy = std::clamp(y + dy, 0, ny - 1);
        double v = in(static_cast<std::size_t>(sx), static_cast<std::size_t>(sy));
        if (!dilate) v = 1.0 - v;
        // For erosion the two sign flips (v = 1-x, out = 1-mean) cancel, so
        // the accumulated derivative is positive in both branches.
        const double dv = common * std::pow(std::max(v, floor_value), power_ - 1.0);
        d_in(static_cast<std::size_t>(sx), static_cast<std::size_t>(sy)) += g * dv;
      }
    }
  }
}

}  // namespace boson::fab
