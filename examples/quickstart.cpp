// Quickstart: inverse-design a 90-degree waveguide bend with BOSON-1.
//
// Demonstrates the minimal end-to-end flow of the library:
//   1. pick a benchmark device,
//   2. build the design problem (parameterization + fabrication models),
//   3. run the fabrication-aware, variation-aware optimization,
//   4. evaluate the post-fabrication Monte Carlo and export the pattern.
//
// Run time: a couple of minutes at the default settings; set
// BOSON_BENCH_SCALE=0.2 for a ~20 s smoke run.

#include <cstdio>

#include "core/methods.h"
#include "io/pgm.h"
#include "sim/backend.h"
#include "sim/cache.h"

int main() {
  using namespace boson;

  // 1. The 90-degree bend benchmark at 50 nm pixels.
  dev::device_spec device = dev::make_bend();

  // 2. Experiment configuration (iterations, Monte-Carlo samples, litho /
  //    etch / temperature variation models). BOSON_BENCH_SCALE scales the
  //    iteration and sample counts.
  core::experiment_config cfg = core::default_config();

  // 3. Run the full BOSON-1 recipe: level-set parameterization, lithography
  //    + etching inside the optimization loop, dense auxiliary objectives,
  //    conditional subspace relaxation and axial + worst-case sampling.
  core::method_result result = core::run_method(device, core::method_id::boson, cfg);

  // 4. Report.
  std::printf("\nBOSON-1 on the %s benchmark\n", device.name.c_str());
  std::printf("  FDFD backend         : %s (BOSON_BACKEND selects banded|bicgstab|gmres)\n",
              sim::to_string(sim::default_backend()));
  std::printf("  pre-fab transmission : %.4f\n", result.prefab_fom);
  std::printf("  post-fab transmission: %.4f +- %.4f  (%zu Monte-Carlo samples)\n",
              result.postfab.fom_mean, result.postfab.fom_std, result.postfab.samples);
  std::printf("  post-fab reflection  : %.4f\n",
              result.postfab.metric_means.at("reflection"));

  const auto cache = sim::engine_cache::global().stats();
  std::printf("  operator cache       : %zu hits / %zu misses (capacity %zu)\n",
              cache.hits, cache.misses, sim::engine_cache::global().capacity());

  io::write_pgm("quickstart_bend_mask.pgm", result.mask);
  std::printf("  mask written to quickstart_bend_mask.pgm\n");
  return 0;
}
