/// \file lease.h
/// Dynamic job leases over the shared campaign journal — the coordination
/// layer that replaced static `--shard i/N` partitioning. Workers *claim*
/// pending jobs by appending a `leased` record and then re-reading the
/// journal: because every worker appends to one O_APPEND file, replay order
/// is a total order, and the first claim to land wins (append-then-verify).
/// Live leases are kept alive with `lease_renewed` heartbeats; a lease whose
/// deadline passed can be taken over by any worker, which appends an
/// explicit `lease_expired` record (naming the victim lease) followed by its
/// own claim — that is how a SIGKILLed worker's jobs get re-leased instead
/// of stranded.
///
/// Time is pluggable (`clock_fn`): production uses the system clock (epoch
/// seconds, comparable across machines up to ordinary clock skew — keep TTLs
/// well above the skew of your fleet), tests inject manual clocks so lease
/// expiry is driven by advancing a number, never by sleeping.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runtime/journal.h"

namespace boson::runtime {

/// Seconds-valued clock. The default (`wall_clock_seconds`) reads the system
/// clock; tests substitute manual clocks for deterministic expiry.
using clock_fn = std::function<double()>;

/// Unix-epoch seconds from the system clock (cross-process comparable).
double wall_clock_seconds();

/// Resolved lease state of one job after folding the journal history.
struct lease_view {
  enum class phase {
    pending,  ///< no live lease; the job is claimable (unless done)
    leased,   ///< a claim won and has not been released/expired/finished
    done,     ///< a `completed` record exists — terminal
  };

  phase state = phase::pending;
  std::string worker;          ///< live-lease owner (state == leased)
  std::uint64_t lease_id = 0;  ///< live-lease id (state == leased)
  double deadline = 0.0;       ///< live-lease expiry (state == leased)
  std::size_t attempts = 0;    ///< highest attempt number observed in any record
};

/// Deterministic fold of a journal history into per-job lease states.
///
/// Rules, applied in replay order per job:
///  - `completed` is terminal: the job is `done`; every later record for the
///    job is ignored (a racer's stale claim cannot resurrect it).
///  - `leased` wins only from `pending`; a claim over a live lease is a
///    *losing claim* and is ignored (the claimant observes this on its
///    verify pass and backs off).
///  - `lease_renewed` / `lease_released` take effect only when (worker,
///    lease_id) match the live lease — a heartbeat from a stolen lease is
///    void.
///  - `lease_expired` frees the job only when it names the live lease *and*
///    its stamp has reached the lease deadline; premature or mismatched
///    expiry records are ignored, so a slow worker cannot be robbed early.
///  - `failed` / `cancelled` from the lease owner (or from the pre-lease
///    legacy flow, which carries no worker) release the lease.
///
/// By construction at most one live lease exists per job at every prefix of
/// the history — the invariant the property tests replay-check.
class lease_table {
 public:
  /// Fold one record into the table (records must arrive in replay order).
  void apply(const journal_entry& e);

  /// Fold a whole replayed history.
  static lease_table resolve(const std::vector<journal_entry>& entries);

  /// The resolved view of `job` (a never-mentioned job is pending).
  lease_view view(std::size_t job) const;

  bool done(std::size_t job) const { return view(job).state == lease_view::phase::done; }

  /// True when `job` holds a lease whose deadline has not passed at `now`.
  bool live(std::size_t job, double now) const {
    const lease_view v = view(job);
    return v.state == lease_view::phase::leased && v.deadline > now;
  }

  const std::map<std::size_t, lease_view>& jobs() const { return jobs_; }

 private:
  std::map<std::size_t, lease_view> jobs_;
};

/// One claim held by this worker.
struct job_lease {
  std::size_t job_index = 0;
  std::string job_name;
  std::uint64_t lease_id = 0;
  double deadline = 0.0;
  std::size_t attempt = 0;     ///< the attempt number this claim starts
  bool stolen = false;         ///< the claim took over an expired lease
  std::string stolen_from;     ///< previous owner when `stolen`
};

/// Per-worker lease runtime: claims, heartbeats, and takeover of expired
/// leases, all through append-then-verify on the shared journal. Thread-safe
/// (one instance is shared by a scheduler's worker threads); reads are
/// incremental — each refresh folds only the records appended since the last
/// one, so claim cost stays proportional to journal growth, not journal
/// size.
class lease_manager {
 public:
  /// `log` is the journal this manager appends through; it must be open on
  /// `log.path()`. `ttl` is the lease duration granted by claims/renewals.
  /// An empty `clock` uses `wall_clock_seconds`.
  lease_manager(journal& log, std::string worker_id, double ttl, clock_fn clock = {});

  /// Fold journal records appended since the last refresh into the table.
  void refresh();

  /// A copy of the current (last-refreshed) resolution. Prefer the query
  /// helpers below inside scheduling loops.
  lease_table snapshot();

  /// Try to claim `job`: returns the lease when this worker's claim won, or
  /// nullopt when the job is done, live-leased, or the claim lost an append
  /// race. Expired leases are taken over (an explicit `lease_expired` record
  /// precedes the claim, and the returned lease is marked `stolen`).
  std::optional<job_lease> claim(std::size_t job, const std::string& job_name);

  /// Heartbeat: extend the lease deadline by TTL. Returns false when the
  /// lease is no longer ours (expired + stolen, or the job completed
  /// elsewhere) — the caller must abandon the attempt.
  bool renew(job_lease& lease);

  /// Voluntarily give the job back (a claim that will not be run).
  void release(const job_lease& lease);

  /// True when `lease` is still the live lease and the job is not done.
  /// Workers call this immediately before committing results, so a worker
  /// that lost its lease mid-run forfeits instead of double-reporting.
  bool still_owner(const job_lease& lease);

  const std::string& worker() const { return worker_; }
  double ttl() const { return ttl_; }
  double now() const { return clock_(); }

 private:
  /// Fold journal records appended since the last refresh (mutex held).
  void refresh_locked();

  std::mutex mutex_;
  journal& log_;
  std::string worker_;
  double ttl_;
  clock_fn clock_;
  lease_table table_;
  std::uint64_t next_lease_id_ = 0;
  journal_cursor cursor_;  ///< journal position folded into `table_` so far
};

}  // namespace boson::runtime
