#pragma once

namespace boson::fab {

/// Temperature-dependent silicon permittivity at 1550 nm (Komma et al. 2012,
/// as used by the paper): eps(t) = (3.48 + 1.8e-4 (t - 300 K))^2.
inline double eps_si(double temperature_kelvin) {
  const double n = 3.48 + 1.8e-4 * (temperature_kelvin - 300.0);
  return n * n;
}

/// d eps_si / dT — drives the worst-case temperature ascent.
inline double eps_si_dt(double temperature_kelvin) {
  const double n = 3.48 + 1.8e-4 * (temperature_kelvin - 300.0);
  return 2.0 * n * 1.8e-4;
}

/// Cladding/void permittivity (air).
inline constexpr double eps_void = 1.0;

/// Nominal operating temperature [K].
inline constexpr double nominal_temperature = 300.0;

}  // namespace boson::fab
