#include "sim/engine.h"

#include "common/error.h"
#include "sim/workspace.h"

namespace boson::sim {

simulation_engine::simulation_engine(const grid2d& grid, const pml_spec& pml, double k0,
                                     const array2d<double>& eps, engine_settings settings)
    : pml_(pml),
      settings_(settings),
      solver_(grid, pml, k0, eps),
      backend_(make_backend(solver_, settings_)) {}

std::vector<array2d<cplx>> simulation_engine::solve_batch(std::vector<cvec> rhs) const {
  const grid2d& g = solver_.grid();
  std::vector<cvec> xs = backend_->solve(rhs);
  auto& ws = workspace::local();
  for (auto& b : rhs) ws.give_cvec(std::move(b));

  std::vector<array2d<cplx>> fields;
  fields.reserve(xs.size());
  for (auto& x : xs) {
    array2d<cplx> field(g.nx, g.ny);
    for (std::size_t i = 0; i < x.size(); ++i) field.raw()[i] = x[i];
    ws.give_cvec(std::move(x));
    fields.push_back(std::move(field));
  }
  return fields;
}

std::vector<array2d<cplx>> simulation_engine::solve_excitations(
    const std::vector<array2d<cplx>>& current_densities) const {
  const grid2d& g = solver_.grid();
  auto& ws = workspace::local();

  std::vector<cvec> rhs;
  rhs.reserve(current_densities.size());
  for (const auto& current : current_densities) {
    cvec b = ws.take_cvec(g.cell_count());
    solver_.build_rhs(current, b);
    rhs.push_back(std::move(b));
  }
  return solve_batch(std::move(rhs));
}

array2d<cplx> simulation_engine::solve_excitation(const array2d<cplx>& current_density) const {
  return std::move(solve_excitations({current_density}).front());
}

std::vector<array2d<cplx>> simulation_engine::solve_adjoints(
    const std::vector<fdfd::field_gradient>& gradients) const {
  const grid2d& g = solver_.grid();
  auto& ws = workspace::local();

  std::vector<cvec> rhs;
  rhs.reserve(gradients.size());
  for (const auto& grad : gradients) {
    cvec b = ws.take_cvec(g.cell_count());
    solver_.build_adjoint_rhs(grad, b);
    rhs.push_back(std::move(b));
  }
  return solve_batch(std::move(rhs));
}

array2d<cplx> simulation_engine::solve_adjoint(const fdfd::field_gradient& g) const {
  return std::move(solve_adjoints({g}).front());
}

}  // namespace boson::sim
