// Tests of the campaign runtime: shard partitioning, campaign expansion,
// the append-only journal, bit-exact checkpoint serialization, checkpoint /
// resume determinism of the optimization loop, the lease-based elastic
// scheduler (claim races, steals, heartbeats — all under injected manual
// clocks, never wall-clock sleeps), and a multi-process fault-injection
// matrix that SIGKILLs forked workers at named kill points and proves the
// survivors re-lease and finish every job exactly once.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "api/session.h"
#include "api/spec.h"
#include "common/rng.h"
#include "core/methods.h"
#include "optim/optimizer.h"
#include "runtime/campaign.h"
#include "runtime/checkpoint.h"
#include "runtime/fault.h"
#include "runtime/journal.h"
#include "runtime/lease.h"
#include "runtime/result_store.h"
#include "runtime/scheduler.h"

namespace boson {
namespace {

namespace fs = std::filesystem;

/// EXPECT that `fn` throws `Exception` whose message contains `fragment`.
template <class Exception, class Fn>
void expect_throw_with(Fn&& fn, const std::string& fragment) {
  try {
    fn();
    FAIL() << "expected an exception containing \"" << fragment << "\"";
  } catch (const Exception& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message was: " << e.what();
  }
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Coarse, fast base spec (mirrors the api/core smoke configuration).
api::experiment_spec smoke_base() {
  api::experiment_spec spec;
  spec.resolution = 0.1;
  spec.iterations = 6;
  spec.relax_epochs = 0;
  spec.litho.na = 0.65;
  spec.litho.sigma = 0.35;
  spec.litho.kernel_half = 5;
  spec.litho.max_kernels = 5;
  spec.eole.anchors_x = 4;
  spec.eole.anchors_y = 4;
  spec.eole.num_terms = 5;
  spec.evaluation = {api::eval_step::monte_carlo(2)};
  return spec;
}

/// 1 device x 3 methods x 2 seeds x 2 overrides = 12 cheap-to-expand jobs.
runtime::campaign_spec synthetic_campaign() {
  runtime::campaign_spec spec;
  spec.name = "synthetic";
  spec.devices = {"bend"};
  spec.methods = {"density", "ls", "boson_no_relax"};
  spec.seeds = {1, 2};
  runtime::campaign_override nominal;
  nominal.name = "nom";
  runtime::campaign_override hot;
  hot.name = "hot";
  hot.patch = io::json_value::parse(R"({"litho": {"corner_defocus": 0.08}})");
  spec.overrides = {nominal, hot};
  spec.base = smoke_base();
  spec.scheduler.workers = 3;
  spec.scheduler.max_retries = 0;
  return spec;
}

/// Executor that fabricates a result without running any simulation.
runtime::job_executor counting_executor(std::atomic<std::size_t>& executed) {
  return [&executed](const runtime::campaign_job& job, const api::run_control&,
                     api::observer*) {
    ++executed;
    api::experiment_result result;
    result.spec = job.spec;
    result.method.prefab_fom = static_cast<double>(job.index);
    result.method.postfab.samples = 2;
    result.method.postfab.fom_mean = static_cast<double>(job.index) * 0.5;
    result.seconds = 0.001;
    return result;
  };
}

/// Like `counting_executor`, but drives `iterations` iteration_finished
/// events through the scheduler's watcher first — so cooperative
/// cancellation, mid_run fault points, and lease heartbeats all get their
/// boundaries without running a simulation.
runtime::job_executor chatty_executor(std::atomic<std::size_t>& executed,
                                      std::size_t iterations) {
  return [&executed, iterations](const runtime::campaign_job& job,
                                 const api::run_control&, api::observer* watcher) {
    for (std::size_t i = 0; i < iterations; ++i) {
      api::progress_event event;
      event.kind = api::progress_event::phase::iteration_finished;
      event.experiment = job.name;
      event.iteration = i;
      event.total_iterations = iterations;
      watcher->on_event(event);  // may throw cancelled/lease_lost
    }
    ++executed;
    api::experiment_result result;
    result.spec = job.spec;
    return result;
  };
}

/// Raw line count of the result store — `result_store::load` collapses to
/// the latest attempt per job, so exactly-once assertions count lines.
std::size_t result_line_count(const fs::path& campaign_dir) {
  std::ifstream in(runtime::result_store::store_path(campaign_dir.string()));
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) ++lines;
  return lines;
}

/// Replay-check the core lease invariant over a full journal history: at no
/// prefix do two live leases cover one job. Concretely, a job's lease owner
/// never changes within a single applied record (ownership must pass through
/// pending via a release / expiry / failure / completion), `completed` is
/// terminal, and an expiry that frees a lease carries stamp >= the freed
/// lease's deadline.
void expect_single_owner_throughout(const std::vector<runtime::journal_entry>& entries) {
  runtime::lease_table table;
  std::map<std::size_t, runtime::lease_view> prev;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const runtime::journal_entry& e = entries[i];
    table.apply(e);
    const runtime::lease_view cur = table.view(e.job_index);
    const auto it = prev.find(e.job_index);
    if (it != prev.end()) {
      const runtime::lease_view& p = it->second;
      if (p.state == runtime::lease_view::phase::leased &&
          cur.state == runtime::lease_view::phase::leased) {
        EXPECT_TRUE(p.worker == cur.worker && p.lease_id == cur.lease_id)
            << "record " << i << " handed job " << e.job_index << " from "
            << p.worker << "#" << p.lease_id << " to " << cur.worker << "#"
            << cur.lease_id << " without passing through pending";
      }
      if (p.state == runtime::lease_view::phase::done) {
        EXPECT_EQ(cur.state, runtime::lease_view::phase::done)
            << "record " << i << " resurrected completed job " << e.job_index;
      }
      if (p.state == runtime::lease_view::phase::leased &&
          cur.state != runtime::lease_view::phase::leased &&
          e.state == runtime::job_state::lease_expired) {
        EXPECT_GE(e.stamp, p.deadline)
            << "record " << i << " expired job " << e.job_index
            << " before its deadline";
      }
    }
    prev[e.job_index] = cur;
  }
}

/// Fork a worker process running `fn`; the child never returns into gtest.
template <class Fn>
pid_t fork_worker(Fn&& fn) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    fn();
    std::_Exit(0);
  }
  return pid;
}

enum class child_end { clean_exit, sigkilled, other };

child_end wait_worker(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) return child_end::clean_exit;
  if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) return child_end::sigkilled;
  return child_end::other;
}

// -------------------------------------------------------------- sharding ---

TEST(shard_range, parses_the_cli_form) {
  const runtime::shard_range shard = runtime::shard_range::parse("2/5");
  EXPECT_EQ(shard.index, 2u);
  EXPECT_EQ(shard.count, 5u);
  EXPECT_EQ(shard.to_string(), "2/5");
}

TEST(shard_range, rejects_malformed_and_out_of_range) {
  // "-2" must not wrap through std::stoul into a 2^64-scale shard count.
  for (const char* bad : {"", "3", "/2", "1/", "a/2", "1/b", "1/2/3", "2/2", "5/3",
                          "1/-2", "-1/2", "+1/2", " 1/2", "1/2 "})
    EXPECT_THROW((void)runtime::shard_range::parse(bad), bad_argument) << bad;
}

TEST(shard_range, shards_partition_every_job_list) {
  // Disjointness and coverage for several N over an awkward job count.
  const std::size_t jobs = 13;
  for (std::size_t count : {1u, 2u, 3u, 5u}) {
    std::vector<std::size_t> owners(jobs, std::numeric_limits<std::size_t>::max());
    for (std::size_t index = 0; index < count; ++index) {
      const runtime::shard_range shard{index, count};
      for (std::size_t j = 0; j < jobs; ++j) {
        if (!shard.contains(j)) continue;
        EXPECT_EQ(owners[j], std::numeric_limits<std::size_t>::max())
            << "job " << j << " claimed twice with N=" << count;
        owners[j] = index;
      }
    }
    for (std::size_t j = 0; j < jobs; ++j)
      EXPECT_NE(owners[j], std::numeric_limits<std::size_t>::max())
          << "job " << j << " unclaimed with N=" << count;
  }
}

// ------------------------------------------------------------- campaigns ---

TEST(campaign_spec, expands_the_cross_product_deterministically) {
  const runtime::campaign_spec spec = synthetic_campaign();
  EXPECT_EQ(spec.job_count(), 12u);
  const std::vector<runtime::campaign_job> jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 12u);
  EXPECT_EQ(jobs[0].name, "bend_density_s1_nom");
  EXPECT_EQ(jobs[1].name, "bend_density_s1_hot");
  EXPECT_EQ(jobs[2].name, "bend_density_s2_nom");
  EXPECT_EQ(jobs[11].name, "bend_boson_no_relax_s2_hot");
  std::set<std::string> names;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    names.insert(jobs[i].name);
    EXPECT_EQ(jobs[i].spec.name, jobs[i].name);
  }
  EXPECT_EQ(names.size(), jobs.size());

  // The override axis patches the expanded specs.
  EXPECT_DOUBLE_EQ(jobs[0].spec.litho.corner_defocus,
                   smoke_base().litho.corner_defocus);
  EXPECT_DOUBLE_EQ(jobs[1].spec.litho.corner_defocus, 0.08);
  // Seeds land in the specs.
  EXPECT_EQ(jobs[0].spec.seed, 1u);
  EXPECT_EQ(jobs[2].spec.seed, 2u);
}

TEST(campaign_spec, json_round_trip_preserves_the_expansion) {
  const runtime::campaign_spec spec = synthetic_campaign();
  const runtime::campaign_spec parsed =
      runtime::campaign_spec::from_json(spec.to_json());
  EXPECT_EQ(parsed.name, spec.name);
  EXPECT_EQ(parsed.job_count(), spec.job_count());
  const auto a = spec.expand();
  const auto b = parsed.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].spec.to_json().dump(), b[i].spec.to_json().dump()) << a[i].name;
  }
}

TEST(campaign_spec, strict_parsing_rejects_precisely) {
  expect_throw_with<bad_argument>(
      [] {
        (void)runtime::campaign_spec::from_json(
            io::json_value::parse(R"({"axes": {"devices": ["bend"], "methods": ["ls"]},
                                      "frobnicate": 1})"));
      },
      "unknown key 'frobnicate'");
  expect_throw_with<bad_argument>(
      [] {
        (void)runtime::campaign_spec::from_json(
            io::json_value::parse(R"({"axes": {"methods": ["ls"]}})"));
      },
      "'axes.devices' must not be empty");
  expect_throw_with<bad_argument>(
      [] {
        (void)runtime::campaign_spec::from_json(io::json_value::parse(
            R"({"axes": {"devices": ["bend"], "methods": ["ls"]},
                "base": {"device": "bend"}})"));
      },
      "'base.device' is campaign-owned");
  expect_throw_with<bad_argument>(
      [] {
        (void)runtime::campaign_spec::from_json(io::json_value::parse(
            R"({"axes": {"devices": ["bend"], "methods": ["ls"]},
                "overrides": [{"name": "x", "device": "bend"}]})"));
      },
      "unknown key 'device' in overrides[0]");
  expect_throw_with<bad_argument>(
      [] {
        runtime::campaign_spec spec = synthetic_campaign();
        spec.methods = {"no_such_method"};
        (void)spec.expand();
      },
      "unknown method");
  // Override names that only differ in characters the artifact sanitizer
  // folds would share one job directory: rejected at expansion.
  expect_throw_with<bad_argument>(
      [] {
        runtime::campaign_spec spec = synthetic_campaign();
        spec.overrides[0].name = "hot+1";
        spec.overrides[1].name = "hot(1";
        spec.overrides[1].patch = io::json_value();
        (void)spec.expand();
      },
      "same artifact directory");
}

TEST(campaign_spec, campaign_local_recipes_form_a_method_axis) {
  io::json_value doc = synthetic_campaign().to_json();
  doc["axes"]["methods"] = io::json_value::parse(R"(["ls", "hybrid"])");
  doc["recipes"] = io::json_value::parse(R"([
    {"name": "hybrid",
     "recipe": {"label": "Hybrid", "parameterization": "density",
                "corners": "adaptive", "initialization": "gray"}}
  ])");
  const runtime::campaign_spec spec = runtime::campaign_spec::from_json(doc);
  ASSERT_EQ(spec.recipes.size(), 1u);
  EXPECT_EQ(spec.recipes[0].recipe.label, "Hybrid");

  const std::vector<runtime::campaign_job> jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 8u);  // 1 device x 2 methods x 2 seeds x 2 overrides
  for (const runtime::campaign_job& job : jobs) {
    if (job.spec.method == "hybrid") {
      ASSERT_TRUE(job.spec.recipe.has_value()) << job.name;
      EXPECT_EQ(job.spec.recipe->parameterization, "density") << job.name;
    } else {
      EXPECT_FALSE(job.spec.recipe.has_value()) << job.name;
    }
  }

  // The canonical form carries the recipes, so resume/status/report sessions
  // re-expand identically.
  const runtime::campaign_spec again = runtime::campaign_spec::from_json(spec.to_json());
  const auto a = spec.expand();
  const auto b = again.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].spec.to_json().dump(), b[i].spec.to_json().dump()) << a[i].name;
}

TEST(campaign_spec, recipe_section_is_validated_strictly) {
  const auto parse_with = [](const std::string& recipes) {
    io::json_value doc = synthetic_campaign().to_json();
    doc["recipes"] = io::json_value::parse(recipes);
    (void)runtime::campaign_spec::from_json(doc);
  };
  expect_throw_with<bad_argument>(
      [&] { parse_with(R"([{"recipe": {"label": "x"}}])"); }, "non-empty 'name'");
  expect_throw_with<bad_argument>([&] { parse_with(R"([{"name": "x"}])"); },
                                  "missing the 'recipe' object");
  expect_throw_with<bad_argument>(
      [&] { parse_with(R"([{"name": "x", "recipe": {"corners": "bogus"}}])"); },
      "unknown corners policy 'bogus'");
  expect_throw_with<bad_argument>(
      [&] {
        parse_with(R"([{"name": "x", "recipe": {}}, {"name": "x", "recipe": {}}])");
      },
      "duplicate recipe name 'x'");
  // A recipe on the base spec would misattribute every job: campaign-owned.
  expect_throw_with<bad_argument>(
      [] {
        (void)runtime::campaign_spec::from_json(io::json_value::parse(
            R"({"axes": {"devices": ["bend"], "methods": ["ls"]},
                "base": {"recipe": {"label": "x"}}})"));
      },
      "'base.recipe' is campaign-owned");
}

TEST(campaign_spec, unlabeled_campaign_recipes_take_the_axis_name) {
  io::json_value doc = synthetic_campaign().to_json();
  doc["axes"]["methods"] = io::json_value::parse(R"(["hybrid"])");
  doc["recipes"] = io::json_value::parse(
      R"([{"name": "hybrid", "recipe": {"parameterization": "density"}}])");
  const runtime::campaign_spec spec = runtime::campaign_spec::from_json(doc);
  ASSERT_EQ(spec.recipes.size(), 1u);
  // No "label" in the JSON: the axis name becomes the display label instead
  // of every unlabeled hybrid reporting as "custom".
  EXPECT_EQ(spec.recipes[0].recipe.label, "hybrid");

  // The same defaulting covers programmatically-built campaigns at expand().
  runtime::campaign_spec programmatic = synthetic_campaign();
  programmatic.methods = {"prog_hybrid"};
  programmatic.recipes.push_back({"prog_hybrid", core::method_recipe{}});
  for (const runtime::campaign_job& job : programmatic.expand()) {
    ASSERT_TRUE(job.spec.recipe.has_value());
    EXPECT_EQ(job.spec.recipe->label, "prog_hybrid");
  }
}

TEST(campaign_spec, programmatic_base_or_override_recipes_are_rejected) {
  runtime::campaign_spec spec = synthetic_campaign();
  spec.base.recipe = core::method_recipe{};
  expect_throw_with<bad_argument>([&] { (void)spec.expand(); },
                                  "'base' must not carry a recipe");

  runtime::campaign_spec patched = synthetic_campaign();
  patched.overrides[1].patch =
      io::json_value::parse(R"({"recipe": {"label": "sneaky"}})");
  expect_throw_with<bad_argument>([&] { (void)patched.expand(); },
                                  "must not patch 'recipe'");
}

TEST(campaign_spec, method_axis_typos_see_campaign_recipes) {
  runtime::campaign_spec spec = synthetic_campaign();
  spec.recipes.push_back({"hybrid", core::method_recipe{}});

  // A declared-but-unswept recipe is an error, not a silent no-op.
  expect_throw_with<bad_argument>([&] { (void)spec.expand(); },
                                  "recipe 'hybrid' is not listed in axes.methods");

  // Unknown-method did-you-mean covers campaign-local recipe names too.
  spec.methods = {"hybird"};
  expect_throw_with<bad_argument>([&] { (void)spec.expand(); },
                                  "did you mean 'hybrid'?");
}

// --------------------------------------------------------------- journal ---

TEST(journal, append_replay_and_latest_state) {
  const fs::path dir = fresh_dir("boson_runtime_journal");
  const std::string path = (dir / "journal.jsonl").string();

  {
    runtime::journal log(path);
    runtime::journal_entry e;
    e.job_index = 3;
    e.job_name = "job3";
    e.state = runtime::job_state::running;
    e.attempt = 1;
    log.append(e);
    e.state = runtime::job_state::checkpointed;
    e.detail = "iteration 2/6";
    log.append(e);
    e.state = runtime::job_state::completed;
    e.detail = "";
    e.seconds = 1.25;
    log.append(e);
    runtime::journal_entry other;
    other.job_index = 4;
    other.job_name = "job4";
    other.state = runtime::job_state::failed;
    other.attempt = 2;
    other.detail = "solver diverged";
    log.append(other);
  }

  const auto entries = runtime::journal::replay(path);
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[1].detail, "iteration 2/6");

  const auto latest = runtime::journal::latest_states(entries);
  ASSERT_EQ(latest.size(), 2u);
  EXPECT_EQ(latest.at(3).state, runtime::job_state::completed);
  EXPECT_DOUBLE_EQ(latest.at(3).seconds, 1.25);
  EXPECT_EQ(latest.at(4).state, runtime::job_state::failed);
  EXPECT_EQ(latest.at(4).detail, "solver diverged");
}

TEST(journal, replay_tolerates_a_torn_tail_but_not_mid_file_corruption) {
  const fs::path dir = fresh_dir("boson_runtime_journal_torn");
  const std::string path = (dir / "journal.jsonl").string();
  {
    runtime::journal log(path);
    runtime::journal_entry e;
    e.job_index = 0;
    e.job_name = "job0";
    e.state = runtime::job_state::completed;
    e.attempt = 1;
    log.append(e);
  }
  // A crash mid-append leaves a truncated final line: ignored on replay.
  {
    std::ofstream out(path, std::ios::app);
    out << R"({"job":1,"name":"job1","sta)";
  }
  const auto entries = runtime::journal::replay(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].job_name, "job0");

  // Re-opening the journal for appending (a resume after the crash) heals
  // the torn tail: the fragment is dropped, the new record does not merge
  // into it, and the history stays replayable.
  {
    runtime::journal log(path);
    runtime::journal_entry e;
    e.job_index = 1;
    e.job_name = "job1";
    e.state = runtime::job_state::running;
    e.attempt = 1;
    log.append(e);
  }
  const auto healed = runtime::journal::replay(path);
  ASSERT_EQ(healed.size(), 2u);
  EXPECT_EQ(healed[0].job_name, "job0");
  EXPECT_EQ(healed[1].job_name, "job1");

  // Complete garbage mid-file (followed by a good record) is corruption.
  {
    std::ofstream out(path, std::ios::app);
    out << "not json\n"
        << R"({"job":2,"name":"job2","state":"completed","attempt":1})" << "\n";
  }
  expect_throw_with<io_error>([&] { (void)runtime::journal::replay(path); }, "line 3");
}

TEST(journal, replaying_a_missing_file_is_an_empty_history) {
  EXPECT_TRUE(runtime::journal::replay("/nonexistent/journal.jsonl").empty());
}

// ------------------------------------------------------------ checkpoint ---

TEST(checkpoint, hex_encoding_is_bit_exact) {
  const double denormal = std::numeric_limits<double>::denorm_min();
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           -1.234e-300,
                           denormal,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::max()};
  for (const double v : values) {
    const std::string hex = runtime::encode_double(v);
    EXPECT_EQ(hex.size(), 16u);
    const double back = runtime::decode_double(hex);
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << hex;
  }
  // NaN round-trips its exact bit pattern too.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double back = runtime::decode_double(runtime::encode_double(nan));
  EXPECT_EQ(std::memcmp(&nan, &back, sizeof nan), 0);

  const dvec vec{0.1, 0.2, -0.3, 1e-17};
  const dvec round = runtime::decode_dvec(runtime::encode_dvec(vec));
  ASSERT_EQ(round.size(), vec.size());
  for (std::size_t i = 0; i < vec.size(); ++i) EXPECT_EQ(round[i], vec[i]);

  expect_throw_with<bad_argument>([] { (void)runtime::decode_double("xyz"); },
                                  "16 characters");
}

TEST(checkpoint, file_round_trip_restores_every_field) {
  const fs::path dir = fresh_dir("boson_runtime_checkpoint");

  core::run_checkpoint ck;
  ck.next_iteration = 4;
  ck.total_iterations = 10;
  ck.theta = {0.5, -0.25, 1.0 / 3.0};
  ck.optimizer.m = {1e-3, -2e-3, 3e-3};
  ck.optimizer.v = {1e-6, 2e-6, 3e-6};
  ck.optimizer.t = 4;
  ck.rng_state = rng(42).save_state();
  ck.has_worst = true;
  ck.worst.d_xi = {0.1, -0.2};
  ck.worst.d_temperature = -0.125;
  ck.final_loss = 0.875;
  core::iteration_record rec;
  rec.iteration = 3;
  rec.loss = 1.0 / 7.0;
  rec.metrics["transmission"] = 0.625;
  ck.trajectory.push_back(rec);
  ck.design_rho = array2d<double>(4, 3, 0.5);

  runtime::save_checkpoint(dir.string(), "jobX", ck);
  EXPECT_TRUE(fs::exists(dir / "checkpoint.json"));
  EXPECT_TRUE(fs::exists(dir / "checkpoint.pgm"));
  EXPECT_FALSE(fs::exists(dir / "checkpoint.json.tmp"));

  const runtime::checkpoint_file file =
      runtime::load_checkpoint(runtime::checkpoint_path(dir.string()));
  EXPECT_EQ(file.job, "jobX");
  const core::run_checkpoint& back = file.state;
  EXPECT_EQ(back.next_iteration, ck.next_iteration);
  EXPECT_EQ(back.total_iterations, ck.total_iterations);
  EXPECT_EQ(back.theta, ck.theta);
  EXPECT_EQ(back.optimizer.m, ck.optimizer.m);
  EXPECT_EQ(back.optimizer.v, ck.optimizer.v);
  EXPECT_EQ(back.optimizer.t, ck.optimizer.t);
  EXPECT_EQ(back.rng_state, ck.rng_state);
  ASSERT_TRUE(back.has_worst);
  EXPECT_EQ(back.worst.d_xi, ck.worst.d_xi);
  EXPECT_EQ(back.worst.d_temperature, ck.worst.d_temperature);
  EXPECT_EQ(back.final_loss, ck.final_loss);
  ASSERT_EQ(back.trajectory.size(), 1u);
  EXPECT_EQ(back.trajectory[0].iteration, 3u);
  EXPECT_EQ(back.trajectory[0].loss, rec.loss);
  EXPECT_EQ(back.trajectory[0].metrics.at("transmission"), 0.625);
}

TEST(checkpoint, rng_save_restore_resumes_the_exact_stream) {
  rng a(123);
  (void)a.normal();
  (void)a.uniform(0.0, 1.0);
  const std::string state = a.save_state();
  dvec expected;
  for (int i = 0; i < 8; ++i) expected.push_back(a.normal());

  rng b(999);  // different seed; state restore overrides everything
  b.restore_state(state);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b.normal(), expected[static_cast<std::size_t>(i)]);

  expect_throw_with<bad_argument>([] { rng r; r.restore_state("not a state"); },
                                  "malformed state");
}

TEST(checkpoint, adam_state_restore_continues_bit_identically) {
  opt::adam a(0.05);
  dvec xa{1.0, -2.0, 0.5};
  const dvec g1{0.1, 0.2, -0.3};
  const dvec g2{-0.2, 0.1, 0.4};
  a.step(xa, g1);
  a.step(xa, g2);
  const opt::adam_state snapshot = a.state();
  dvec xb = xa;  // same params at the snapshot point
  a.step(xa, g1);

  opt::adam b(0.05);
  b.restore(snapshot);
  b.step(xb, g1);
  EXPECT_EQ(xa, xb);
}

// The headline determinism property: run J iterations, checkpoint, resume in
// a fresh problem/optimizer/rng, and the remaining trajectory, final theta
// and density are bit-identical to the uninterrupted run — including the
// BOSON-1 recipe's stateful pieces (corner sampling RNG, worst-case ascent
// carry-over, Adam moments).
TEST(checkpoint, resumed_run_is_bit_identical_to_uninterrupted) {
  api::experiment_spec spec = smoke_base();
  spec.name = "resume_smoke";
  spec.device = "bend";
  spec.method = "boson";  // axial_plus_worst sampling + relaxation warmup
  spec.relax_epochs = 2;

  const core::experiment_config cfg = api::session::config_for(spec);
  const core::method_recipe recipe = api::registry::global().method(spec.method);
  const dev::device_spec device =
      api::registry::global().make_device(spec.device, spec.resolution);

  core::method_hooks plain;
  plain.run_postfab_mc = false;
  const core::method_result uninterrupted = core::run_method(device, recipe, cfg, plain);

  // Same run, capturing a mid-flight checkpoint every 2 iterations.
  std::shared_ptr<core::run_checkpoint> mid;
  core::method_hooks capturing;
  capturing.run_postfab_mc = false;
  capturing.checkpoint_every = 2;
  capturing.on_checkpoint = [&mid](const core::run_checkpoint& ck) {
    if (ck.next_iteration == 2) mid = std::make_shared<core::run_checkpoint>(ck);
  };
  const core::method_result checkpointed = core::run_method(device, recipe, cfg, capturing);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->total_iterations, cfg.scaled_iterations());

  // Emitting checkpoints must not perturb the run itself.
  EXPECT_EQ(checkpointed.run.theta, uninterrupted.run.theta);

  // Round-trip the snapshot through its serialized form, then resume.
  const fs::path dir = fresh_dir("boson_runtime_resume");
  runtime::save_checkpoint(dir.string(), spec.name, *mid);
  const runtime::checkpoint_file loaded =
      runtime::load_checkpoint(runtime::checkpoint_path(dir.string()));

  core::method_hooks resuming;
  resuming.run_postfab_mc = false;
  resuming.resume = std::make_shared<core::run_checkpoint>(loaded.state);
  const core::method_result resumed = core::run_method(device, recipe, cfg, resuming);

  EXPECT_EQ(resumed.run.theta, uninterrupted.run.theta);
  EXPECT_EQ(resumed.run.final_loss, uninterrupted.run.final_loss);
  ASSERT_EQ(resumed.run.trajectory.size(), uninterrupted.run.trajectory.size());
  for (std::size_t i = 0; i < resumed.run.trajectory.size(); ++i) {
    EXPECT_EQ(resumed.run.trajectory[i].loss, uninterrupted.run.trajectory[i].loss) << i;
    EXPECT_EQ(resumed.run.trajectory[i].metrics, uninterrupted.run.trajectory[i].metrics) << i;
  }
  EXPECT_EQ(resumed.prefab_fom, uninterrupted.prefab_fom);
  ASSERT_EQ(resumed.mask.size(), uninterrupted.mask.size());
  for (std::size_t i = 0; i < resumed.mask.size(); ++i)
    ASSERT_EQ(resumed.mask.data()[i], uninterrupted.mask.data()[i]) << i;
}

// ----------------------------------------------------------- result store --

TEST(result_store, append_load_and_latest_attempt_wins) {
  const fs::path dir = fresh_dir("boson_runtime_store");
  {
    runtime::result_store store(dir.string());
    runtime::job_result_row row;
    row.job_index = 1;
    row.name = "job1";
    row.device = "bend";
    row.method = "ls";
    row.seed = 7;
    row.prefab_fom = 0.5;
    row.attempt = 1;
    store.append(row);
    row.prefab_fom = 0.75;  // retry overwrote the result
    row.attempt = 2;
    store.append(row);
    runtime::job_result_row other;
    other.job_index = 0;
    other.name = "job0";
    other.device = "bend";
    other.method = "density";
    other.seed = 7;
    other.prefab_fom = 0.25;
    other.postfab_samples = 2;
    other.postfab_mean = 0.2;
    other.postfab_std = 0.05;
    other.postfab_min = 0.15;
    other.postfab_max = 0.25;
    store.append(other);
  }
  const auto rows = runtime::result_store::load(dir.string());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].job_index, 0u);
  EXPECT_EQ(rows[0].postfab_samples, 2u);
  EXPECT_DOUBLE_EQ(rows[0].postfab_max, 0.25);
  EXPECT_EQ(rows[1].attempt, 2u);
  EXPECT_DOUBLE_EQ(rows[1].prefab_fom, 0.75);
}

TEST(result_store, report_covers_the_method_device_grid) {
  runtime::campaign_spec spec = synthetic_campaign();
  std::vector<runtime::job_result_row> rows;
  for (const runtime::campaign_job& job : spec.expand()) {
    runtime::job_result_row row;
    row.job_index = job.index;
    row.name = job.name;
    row.device = job.spec.device;
    row.method = job.spec.method;
    row.seed = job.spec.seed;
    row.prefab_fom = 0.5;
    row.postfab_samples = 2;
    row.postfab_mean = 0.4;
    row.postfab_std = 0.01;
    rows.push_back(row);
  }
  const std::string report = runtime::render_report(spec, rows);
  EXPECT_NE(report.find("12/12 jobs"), std::string::npos);
  for (const std::string& method : spec.methods)
    EXPECT_NE(report.find(method), std::string::npos) << method;
  EXPECT_NE(report.find("Device: bend"), std::string::npos);
}

// -------------------------------------------------------------- scheduler --

TEST(scheduler, runs_every_job_and_journals_the_lifecycle) {
  const fs::path dir = fresh_dir("boson_runtime_sched");
  std::atomic<std::size_t> executed{0};

  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.executor = counting_executor(executed);
  runtime::scheduler scheduler(synthetic_campaign(), options);
  const runtime::scheduler_report report = scheduler.run();

  EXPECT_EQ(executed.load(), 12u);
  EXPECT_EQ(report.shard_jobs, 12u);
  EXPECT_EQ(report.completed, 12u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.rows.size(), 12u);

  const auto latest = runtime::journal::latest_states(
      runtime::journal::replay(runtime::journal_path(dir.string())));
  ASSERT_EQ(latest.size(), 12u);
  for (const auto& [index, entry] : latest) {
    (void)index;
    EXPECT_EQ(entry.state, runtime::job_state::completed);
    EXPECT_EQ(entry.attempt, 1u);
  }
  EXPECT_EQ(runtime::result_store::load(dir.string()).size(), 12u);
}

TEST(scheduler, tracing_emits_a_chrome_trace_artifact_per_job) {
  const fs::path dir = fresh_dir("boson_runtime_sched_trace");
  std::atomic<std::size_t> executed{0};

  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.executor = counting_executor(executed);
  options.trace = true;
  const runtime::scheduler_report report =
      runtime::scheduler(synthetic_campaign(), options).run();
  ASSERT_EQ(report.completed, 12u);

  // Every job directory gained a trace.json that Chrome's trace viewer can
  // load: a traceEvents array of complete ("X") events carrying the span
  // lifecycle (lease -> run -> commit) with microsecond timestamps.
  std::size_t traces = 0;
  for (const auto& entry : fs::directory_iterator(dir / "jobs")) {
    const fs::path trace_path = entry.path() / "trace.json";
    ASSERT_TRUE(fs::exists(trace_path)) << trace_path;
    ++traces;

    const io::json_value doc = io::json_value::parse_file(trace_path.string());
    const auto& events = doc.at("traceEvents").elements();
    ASSERT_FALSE(events.empty());
    std::set<std::string> names;
    for (const auto& event : events) {
      EXPECT_EQ(event.at("ph").as_string(), "X");
      EXPECT_GE(event.at("dur").as_number(), 0.0);
      names.insert(event.at("name").as_string());
    }
    EXPECT_EQ(names.count("job.lease"), 1u);
    EXPECT_EQ(names.count("job.run"), 1u);
    EXPECT_EQ(names.count("job.commit"), 1u);
  }
  EXPECT_EQ(traces, 12u);
}

TEST(scheduler, rerunning_a_finished_campaign_executes_nothing) {
  const fs::path dir = fresh_dir("boson_runtime_sched_rerun");
  std::atomic<std::size_t> executed{0};

  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.executor = counting_executor(executed);
  (void)runtime::scheduler(synthetic_campaign(), options).run();
  ASSERT_EQ(executed.load(), 12u);

  const runtime::scheduler_report second =
      runtime::scheduler(synthetic_campaign(), options).run();
  EXPECT_EQ(executed.load(), 12u);  // nothing re-ran
  EXPECT_EQ(second.skipped, 12u);
  EXPECT_EQ(second.completed, 0u);
}

TEST(scheduler, shards_are_disjoint_and_cover_the_campaign) {
  const fs::path dir = fresh_dir("boson_runtime_sched_shards");
  std::mutex mutex;
  std::vector<std::size_t> executed_jobs;

  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.executor = [&](const runtime::campaign_job& job, const api::run_control&,
                         api::observer*) {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      executed_jobs.push_back(job.index);
    }
    api::experiment_result result;
    result.spec = job.spec;
    return result;
  };

  std::size_t shard_jobs_total = 0;
  for (std::size_t index = 0; index < 3; ++index) {
    options.shard = runtime::shard_range{index, 3};
    const auto report = runtime::scheduler(synthetic_campaign(), options).run();
    shard_jobs_total += report.shard_jobs;
    EXPECT_EQ(report.completed, report.shard_jobs);
  }
  EXPECT_EQ(shard_jobs_total, 12u);
  std::set<std::size_t> unique(executed_jobs.begin(), executed_jobs.end());
  EXPECT_EQ(executed_jobs.size(), 12u);  // no job ran twice
  EXPECT_EQ(unique.size(), 12u);         // every job ran somewhere
  EXPECT_EQ(runtime::result_store::load(dir.string()).size(), 12u);
}

TEST(scheduler, retries_until_the_budget_is_exhausted) {
  const fs::path dir = fresh_dir("boson_runtime_sched_retry");
  std::atomic<std::size_t> attempts{0};

  runtime::campaign_spec spec = synthetic_campaign();
  spec.methods = {"ls"};
  spec.seeds = {1};
  spec.overrides.clear();
  spec.scheduler.max_retries = 2;
  spec.scheduler.workers = 1;

  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.executor = [&](const runtime::campaign_job& job, const api::run_control&,
                         api::observer*) -> api::experiment_result {
    if (attempts.fetch_add(1) < 2) throw numeric_error("transient solver failure");
    api::experiment_result result;
    result.spec = job.spec;
    return result;
  };

  const auto report = runtime::scheduler(spec, options).run();
  EXPECT_EQ(attempts.load(), 3u);  // two failures + one success
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.failed, 0u);

  const auto rows = runtime::result_store::load(dir.string());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].attempt, 3u);

  // A permanently-failing job exhausts the budget and reports the error.
  const fs::path dir2 = fresh_dir("boson_runtime_sched_fail");
  options.campaign_dir = dir2.string();
  options.executor = [](const runtime::campaign_job&, const api::run_control&,
                        api::observer*) -> api::experiment_result {
    throw numeric_error("permanent failure");
  };
  const auto failed = runtime::scheduler(spec, options).run();
  EXPECT_EQ(failed.completed, 0u);
  EXPECT_EQ(failed.failed, 1u);
  ASSERT_EQ(failed.errors.size(), 1u);
  EXPECT_NE(failed.errors[0].find("permanent failure"), std::string::npos);
  const auto latest = runtime::journal::latest_states(
      runtime::journal::replay(runtime::journal_path(dir2.string())));
  EXPECT_EQ(latest.at(0).state, runtime::job_state::failed);
  EXPECT_EQ(latest.at(0).attempt, 3u);
}

TEST(scheduler, cancel_stops_dispatch_of_queued_jobs) {
  const fs::path dir = fresh_dir("boson_runtime_sched_cancel");
  std::atomic<std::size_t> executed{0};

  runtime::campaign_spec spec = synthetic_campaign();
  spec.scheduler.workers = 1;  // deterministic dispatch order

  runtime::scheduler* target = nullptr;
  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.executor = [&](const runtime::campaign_job& job, const api::run_control&,
                         api::observer*) {
    ++executed;
    target->cancel();  // the first job pulls the plug on the campaign
    api::experiment_result result;
    result.spec = job.spec;
    return result;
  };
  runtime::scheduler scheduler(spec, options);
  target = &scheduler;
  const auto report = scheduler.run();

  // The in-flight job still completed (cancellation is cooperative and only
  // fires at iteration/stage boundaries); nothing else was dispatched.
  EXPECT_EQ(executed.load(), 1u);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_TRUE(scheduler.cancel_requested());

  std::size_t completed = 0;
  const auto latest = runtime::journal::latest_states(
      runtime::journal::replay(runtime::journal_path(dir.string())));
  for (const auto& [index, entry] : latest) {
    (void)index;
    completed += entry.state == runtime::job_state::completed ? 1 : 0;
  }
  EXPECT_EQ(completed, 1u);
}

TEST(scheduler, discards_a_stale_checkpoint_instead_of_burning_retries) {
  // A checkpoint captured under a different effective run length (changed
  // BOSON_BENCH_SCALE, edited campaign) must be discarded up front so the
  // job runs fresh, not retried against the same dead snapshot.
  const fs::path dir = fresh_dir("boson_runtime_sched_stale");

  runtime::campaign_spec spec;
  spec.name = "stale_ck";
  spec.devices = {"bend"};
  spec.methods = {"ls"};
  spec.base = smoke_base();
  spec.base.iterations = 4;
  spec.scheduler.workers = 1;
  spec.scheduler.max_retries = 0;  // no budget to burn

  const std::string job_dir = runtime::job_directory(dir.string(), "bend_ls_s7");
  core::run_checkpoint stale;
  stale.next_iteration = 500;
  stale.total_iterations = 999;  // never matches a 4-iteration run
  stale.theta = {0.0};
  stale.rng_state = rng(1).save_state();
  runtime::save_checkpoint(job_dir, "bend_ls_s7", stale);

  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  const auto report = runtime::scheduler(spec, options).run();
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.resumed, 0u);  // ran fresh, not from the stale snapshot
  EXPECT_FALSE(fs::exists(runtime::checkpoint_path(job_dir)));
}

TEST(scheduler, cancellation_via_observer_interrupts_and_resume_completes) {
  // A campaign of two real jobs, workers=1, checkpoint every 2 iterations.
  // An external watcher cancels the scheduler mid-way through job 1 (the
  // second job); the scheduler stops at the next iteration boundary leaving
  // job 1's checkpoint behind, and a second scheduler pass resumes it to
  // produce exactly what an uninterrupted campaign produces.
  runtime::campaign_spec spec;
  spec.name = "resume_e2e";
  spec.devices = {"bend"};
  spec.methods = {"boson_no_relax"};
  spec.seeds = {7, 8};
  spec.base = smoke_base();
  spec.scheduler.workers = 1;
  spec.scheduler.max_retries = 0;
  spec.scheduler.checkpoint_every = 2;

  // Reference: uninterrupted campaign.
  const fs::path ref_dir = fresh_dir("boson_runtime_e2e_ref");
  runtime::scheduler_options ref_options;
  ref_options.campaign_dir = ref_dir.string();
  const auto ref_report = runtime::scheduler(spec, ref_options).run();
  ASSERT_EQ(ref_report.completed, 2u);

  // Interrupted: cancel when the second job reaches iteration 3.
  const fs::path dir = fresh_dir("boson_runtime_e2e");

  struct cancelling_watcher : api::observer {
    runtime::scheduler* target = nullptr;
    std::string trigger_job;
    void on_event(const api::progress_event& event) override {
      if (event.kind == api::progress_event::phase::iteration_finished &&
          event.experiment == trigger_job && event.iteration >= 3)
        target->cancel();
    }
  };
  cancelling_watcher watcher;
  watcher.trigger_job = "bend_boson_no_relax_s8";

  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.watcher = &watcher;
  runtime::scheduler first_pass(spec, options);
  watcher.target = &first_pass;
  const auto report1 = first_pass.run();
  EXPECT_EQ(report1.completed, 1u);
  EXPECT_EQ(report1.cancelled, 1u);
  EXPECT_TRUE(
      fs::exists(runtime::checkpoint_path(runtime::job_directory(
          dir.string(), "bend_boson_no_relax_s8"))));

  // Resume without the watcher: the cancelled job restarts from iteration 4.
  runtime::scheduler_options resume_options;
  resume_options.campaign_dir = dir.string();
  runtime::scheduler second_pass(spec, resume_options);
  const auto report2 = second_pass.run();
  EXPECT_EQ(report2.skipped, 1u);
  EXPECT_EQ(report2.completed, 1u);
  EXPECT_EQ(report2.resumed, 1u);

  // Job-level results match the uninterrupted campaign exactly.
  const auto ref_rows = runtime::result_store::load(ref_dir.string());
  const auto rows = runtime::result_store::load(dir.string());
  ASSERT_EQ(ref_rows.size(), 2u);
  ASSERT_EQ(rows.size(), 2u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].name, ref_rows[i].name);
    EXPECT_EQ(rows[i].prefab_fom, ref_rows[i].prefab_fom) << rows[i].name;
    EXPECT_EQ(rows[i].postfab_mean, ref_rows[i].postfab_mean) << rows[i].name;
    EXPECT_EQ(rows[i].postfab_std, ref_rows[i].postfab_std) << rows[i].name;
  }

  // And the resumed job's trajectory artifact is byte-identical to the
  // uninterrupted one: the checkpointed early iterations and the post-resume
  // iterations fuse into the exact same series.
  const auto read = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const std::string ref_csv =
      read(fs::path(ref_dir) / "jobs" / "bend_boson_no_relax_s8" / "trajectory.csv");
  const std::string csv =
      read(fs::path(dir) / "jobs" / "bend_boson_no_relax_s8" / "trajectory.csv");
  ASSERT_FALSE(ref_csv.empty());
  EXPECT_EQ(csv, ref_csv);
}

// ------------------------------------------------------- lease journaling --

TEST(journal, lease_records_round_trip_every_field) {
  runtime::journal_entry e;
  e.job_index = 7;
  e.job_name = "job7";
  e.state = runtime::job_state::leased;
  e.attempt = 2;
  e.worker = "w42";
  e.lease_id = 9;
  e.deadline = 1234.5;
  e.stamp = 1204.5;
  const runtime::journal_entry back = runtime::journal_entry::from_json(e.to_json());
  EXPECT_EQ(back.state, runtime::job_state::leased);
  EXPECT_EQ(back.worker, "w42");
  EXPECT_EQ(back.lease_id, 9u);
  EXPECT_DOUBLE_EQ(back.deadline, 1234.5);
  EXPECT_DOUBLE_EQ(back.stamp, 1204.5);

  // Every lease state survives the string round trip.
  for (const runtime::job_state s :
       {runtime::job_state::leased, runtime::job_state::lease_renewed,
        runtime::job_state::lease_released, runtime::job_state::lease_expired})
    EXPECT_EQ(runtime::job_state_from_string(runtime::to_string(s)), s);

  // A legacy (pre-lease) record serializes without any lease keys and a
  // legacy line parses to the zero defaults — old journals stay replayable.
  runtime::journal_entry legacy;
  legacy.job_index = 1;
  legacy.job_name = "old";
  legacy.state = runtime::job_state::completed;
  legacy.attempt = 1;
  const io::json_value v = legacy.to_json();
  EXPECT_EQ(v.find("worker"), nullptr);
  EXPECT_EQ(v.find("lease"), nullptr);
  EXPECT_EQ(v.find("deadline"), nullptr);
  EXPECT_EQ(v.find("t"), nullptr);
  const runtime::journal_entry parsed = runtime::journal_entry::from_json(
      io::json_value::parse(R"({"job":1,"name":"old","state":"running","attempt":1})"));
  EXPECT_TRUE(parsed.worker.empty());
  EXPECT_EQ(parsed.lease_id, 0u);
  EXPECT_DOUBLE_EQ(parsed.deadline, 0.0);
  EXPECT_DOUBLE_EQ(parsed.stamp, 0.0);
}

TEST(journal, torn_lease_record_tail_heals_and_resolves) {
  const fs::path dir = fresh_dir("boson_runtime_journal_lease_torn");
  const std::string path = (dir / "journal.jsonl").string();
  {
    runtime::journal log(path);
    runtime::journal_entry e;
    e.job_index = 0;
    e.job_name = "job0";
    e.state = runtime::job_state::leased;
    e.attempt = 1;
    e.worker = "a";
    e.lease_id = 1;
    e.deadline = 10.0;
    e.stamp = 0.0;
    log.append(e);
    e.state = runtime::job_state::lease_renewed;
    e.deadline = 20.0;
    e.stamp = 5.0;
    log.append(e);
  }
  // A crash mid-claim leaves a truncated lease record: dropped on replay,
  // healed on the next append, and the resolved lease state is unaffected.
  {
    std::ofstream out(path, std::ios::app);
    out << R"({"job":1,"name":"job1","state":"leased","attempt":1,"worker":"b","lea)";
  }
  const auto torn = runtime::journal::replay(path);
  ASSERT_EQ(torn.size(), 2u);
  runtime::lease_table table = runtime::lease_table::resolve(torn);
  EXPECT_EQ(table.view(0).state, runtime::lease_view::phase::leased);
  EXPECT_EQ(table.view(0).worker, "a");
  EXPECT_DOUBLE_EQ(table.view(0).deadline, 20.0);  // the renewal took
  EXPECT_EQ(table.view(1).state, runtime::lease_view::phase::pending);

  {
    runtime::journal log(path);  // heals the torn tail
    runtime::journal_entry e;
    e.job_index = 1;
    e.job_name = "job1";
    e.state = runtime::job_state::leased;
    e.attempt = 1;
    e.worker = "b";
    e.lease_id = 1;
    e.deadline = 12.0;
    e.stamp = 2.0;
    log.append(e);
  }
  const auto healed = runtime::journal::replay(path);
  ASSERT_EQ(healed.size(), 3u);
  table = runtime::lease_table::resolve(healed);
  EXPECT_EQ(table.view(1).state, runtime::lease_view::phase::leased);
  EXPECT_EQ(table.view(1).worker, "b");
}

TEST(campaign_spec, lease_ttl_round_trips_and_validates) {
  runtime::campaign_spec spec = synthetic_campaign();
  spec.scheduler.lease_ttl = 12.5;
  const runtime::campaign_spec back = runtime::campaign_spec::from_json(spec.to_json());
  EXPECT_DOUBLE_EQ(back.scheduler.lease_ttl, 12.5);

  io::json_value bad = spec.to_json();
  bad["scheduler"]["lease_ttl"] = 0.0;
  expect_throw_with<bad_argument>(
      [&] { (void)runtime::campaign_spec::from_json(bad); }, "lease_ttl");
  bad["scheduler"]["lease_ttl"] = io::json_value::parse("\"fast\"");
  expect_throw_with<bad_argument>(
      [&] { (void)runtime::campaign_spec::from_json(bad); }, "lease_ttl");
}

// --------------------------------------------------------- lease semantics --

TEST(fault_injector, arms_parses_and_fires_at_the_nth_occurrence) {
  runtime::fault_injector faults;
  std::vector<std::size_t> fired;
  faults.arm(runtime::fault_point::mid_run, 3,
             [&fired](const runtime::fault_site& site) { fired.push_back(site.occurrence); });
  for (std::size_t i = 0; i < 5; ++i) faults.hit(runtime::fault_point::mid_run, 1, "j", 1);
  ASSERT_EQ(fired.size(), 1u);  // only the 3rd hit fired
  EXPECT_EQ(fired[0], 3u);
  EXPECT_EQ(faults.count(runtime::fault_point::mid_run), 5u);
  EXPECT_EQ(faults.count(runtime::fault_point::after_lease), 0u);

  // The CLI spec form: "point:n" (and every point name parses).
  for (const char* name : {"after_lease", "mid_run", "after_checkpoint", "before_result"})
    EXPECT_STREQ(runtime::to_string(runtime::fault_point_from_string(name)), name);
  expect_throw_with<bad_argument>(
      [] { (void)runtime::fault_point_from_string("mid_flight"); }, "mid_flight");
  runtime::fault_injector cli;
  cli.arm("after_checkpoint:2");  // arms kill_process; never hit here
  expect_throw_with<bad_argument>([&] { cli.arm("mid_run:x"); }, "occurrence");
}

TEST(lease_table, resolution_rules_cover_claims_steals_and_legacy_records) {
  using phase = runtime::lease_view::phase;
  const auto rec = [](std::size_t job, runtime::job_state state, std::size_t attempt,
                      const std::string& worker, std::uint64_t lease, double deadline,
                      double stamp) {
    runtime::journal_entry e;
    e.job_index = job;
    e.job_name = "j" + std::to_string(job);
    e.state = state;
    e.attempt = attempt;
    e.worker = worker;
    e.lease_id = lease;
    e.deadline = deadline;
    e.stamp = stamp;
    return e;
  };

  runtime::lease_table t;
  // A claim wins from pending; a second claim over the live lease loses.
  t.apply(rec(0, runtime::job_state::leased, 1, "a", 1, 10.0, 0.0));
  t.apply(rec(0, runtime::job_state::leased, 1, "b", 1, 11.0, 1.0));
  EXPECT_EQ(t.view(0).worker, "a");

  // Renewal by a non-owner is void; by the owner it moves the deadline.
  t.apply(rec(0, runtime::job_state::lease_renewed, 1, "b", 1, 99.0, 2.0));
  EXPECT_DOUBLE_EQ(t.view(0).deadline, 10.0);
  t.apply(rec(0, runtime::job_state::lease_renewed, 1, "a", 1, 15.0, 3.0));
  EXPECT_DOUBLE_EQ(t.view(0).deadline, 15.0);

  // A premature expiry (stamp < deadline) cannot rob a slow worker...
  t.apply(rec(0, runtime::job_state::lease_expired, 1, "a", 1, 15.0, 14.0));
  EXPECT_EQ(t.view(0).state, phase::leased);
  // ...a proven one frees the job, and the thief's claim then wins.
  t.apply(rec(0, runtime::job_state::lease_expired, 1, "a", 1, 15.0, 15.0));
  EXPECT_EQ(t.view(0).state, phase::pending);
  t.apply(rec(0, runtime::job_state::leased, 2, "b", 2, 30.0, 15.0));
  EXPECT_EQ(t.view(0).worker, "b");
  EXPECT_EQ(t.view(0).attempts, 2u);

  // completed is terminal: stragglers from the robbed worker are ignored.
  t.apply(rec(0, runtime::job_state::completed, 2, "b", 2, 0.0, 16.0));
  t.apply(rec(0, runtime::job_state::leased, 3, "a", 2, 99.0, 17.0));
  EXPECT_EQ(t.view(0).state, phase::done);

  // Voluntary release frees the job for the next claimant.
  t.apply(rec(1, runtime::job_state::leased, 1, "a", 3, 10.0, 0.0));
  t.apply(rec(1, runtime::job_state::lease_released, 1, "a", 3, 0.0, 1.0));
  EXPECT_EQ(t.view(1).state, phase::pending);

  // failed / cancelled release the owner's lease; legacy records (no
  // worker — the pre-lease flow) release whatever is live.
  t.apply(rec(2, runtime::job_state::leased, 1, "a", 4, 10.0, 0.0));
  t.apply(rec(2, runtime::job_state::failed, 1, "a", 4, 0.0, 1.0));
  EXPECT_EQ(t.view(2).state, phase::pending);
  t.apply(rec(3, runtime::job_state::leased, 1, "a", 5, 10.0, 0.0));
  t.apply(rec(3, runtime::job_state::cancelled, 1, "", 0, 0.0, 1.0));
  EXPECT_EQ(t.view(3).state, phase::pending);

  // A journal written by the pre-lease scheduler (scheduled / running /
  // completed only, no lease fields) resolves to done just the same.
  runtime::lease_table legacy;
  legacy.apply(rec(4, runtime::job_state::scheduled, 0, "", 0, 0.0, 0.0));
  legacy.apply(rec(4, runtime::job_state::running, 1, "", 0, 0.0, 0.0));
  EXPECT_EQ(legacy.view(4).state, phase::pending);
  legacy.apply(rec(4, runtime::job_state::completed, 1, "", 0, 0.0, 0.0));
  EXPECT_TRUE(legacy.done(4));
}

TEST(lease_table, seeded_adversarial_histories_never_overlap_live_leases) {
  // Property test: fold journals of fully random records (every state kind,
  // random workers / lease ids / stamps / deadlines, including nonsense
  // combinations no healthy worker would write) and replay-check that the
  // single-owner invariant holds at every prefix.
  const std::vector<runtime::job_state> states = {
      runtime::job_state::scheduled,     runtime::job_state::leased,
      runtime::job_state::lease_renewed, runtime::job_state::lease_released,
      runtime::job_state::lease_expired, runtime::job_state::running,
      runtime::job_state::checkpointed,  runtime::job_state::completed,
      runtime::job_state::failed,        runtime::job_state::cancelled};
  const std::vector<std::string> workers = {"", "a", "b", "c"};
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    rng r(seed);
    std::vector<runtime::journal_entry> history;
    history.reserve(400);
    for (std::size_t i = 0; i < 400; ++i) {
      runtime::journal_entry e;
      e.job_index = static_cast<std::size_t>(r.uniform_int(0, 3));
      e.job_name = "j" + std::to_string(e.job_index);
      e.state = states[static_cast<std::size_t>(r.uniform_int(0, 9))];
      e.attempt = static_cast<std::size_t>(r.uniform_int(0, 4));
      e.worker = workers[static_cast<std::size_t>(r.uniform_int(0, 3))];
      e.lease_id = static_cast<std::uint64_t>(r.uniform_int(0, 5));
      e.deadline = r.uniform(0.0, 20.0);
      e.stamp = r.uniform(0.0, 20.0);
      history.push_back(e);
    }
    expect_single_owner_throughout(history);
  }
}

// ---------------------------------------------------------- lease manager --

TEST(lease_manager, append_then_verify_claims_and_expired_lease_steals) {
  const fs::path dir = fresh_dir("boson_runtime_lease_claims");
  const std::string path = (dir / "journal.jsonl").string();
  runtime::journal log_a(path);
  runtime::journal log_b(path);

  double now_a = 0.0;
  double now_b = 0.0;
  runtime::lease_manager a(log_a, "a", 10.0, [&now_a] { return now_a; });
  runtime::lease_manager b(log_b, "b", 10.0, [&now_b] { return now_b; });

  // First claim wins; the loser's verify pass reports the loss.
  std::optional<runtime::job_lease> held = a.claim(0, "job0");
  ASSERT_TRUE(held.has_value());
  EXPECT_FALSE(held->stolen);
  EXPECT_EQ(held->attempt, 1u);
  EXPECT_DOUBLE_EQ(held->deadline, 10.0);
  EXPECT_FALSE(b.claim(0, "job0").has_value());
  EXPECT_TRUE(a.still_owner(*held));

  // Before the deadline nobody can steal; after it, an explicit expiry
  // record plus a fresh claim transfer the job.
  now_b = 9.0;
  EXPECT_FALSE(b.claim(0, "job0").has_value());
  now_b = 10.0;
  const std::optional<runtime::job_lease> stolen = b.claim(0, "job0");
  ASSERT_TRUE(stolen.has_value());
  EXPECT_TRUE(stolen->stolen);
  EXPECT_EQ(stolen->stolen_from, "a");
  EXPECT_EQ(stolen->attempt, 2u);

  // The robbed worker notices on its next heartbeat / ownership check.
  EXPECT_FALSE(a.still_owner(*held));
  EXPECT_FALSE(a.renew(*held));

  // The whole exchange satisfies the single-owner invariant.
  expect_single_owner_throughout(runtime::journal::replay(path));
}

TEST(lease_manager, renewals_extend_and_releases_free_immediately) {
  const fs::path dir = fresh_dir("boson_runtime_lease_renew");
  const std::string path = (dir / "journal.jsonl").string();
  runtime::journal log_a(path);
  runtime::journal log_b(path);

  double now = 0.0;
  const runtime::clock_fn clock = [&now] { return now; };
  runtime::lease_manager a(log_a, "a", 10.0, clock);
  runtime::lease_manager b(log_b, "b", 10.0, clock);

  std::optional<runtime::job_lease> held = a.claim(5, "job5");
  ASSERT_TRUE(held.has_value());
  now = 6.0;
  ASSERT_TRUE(a.renew(*held));
  EXPECT_DOUBLE_EQ(held->deadline, 16.0);
  now = 12.0;  // past the original deadline, inside the renewed one
  EXPECT_FALSE(b.claim(5, "job5").has_value());

  // A voluntary release frees the job with no expiry wait at all.
  a.release(*held);
  const std::optional<runtime::job_lease> next = b.claim(5, "job5");
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->stolen);  // released, not expired: a clean claim
  EXPECT_FALSE(a.still_owner(*held));
}

TEST(lease_manager, incremental_refresh_leaves_a_partial_tail_for_later) {
  const fs::path dir = fresh_dir("boson_runtime_lease_tail");
  const std::string path = (dir / "journal.jsonl").string();
  runtime::journal log(path);
  runtime::lease_manager writer(log, "a", 10.0, [] { return 0.0; });
  ASSERT_TRUE(writer.claim(0, "job0").has_value());

  runtime::journal log_b(path);
  runtime::lease_manager reader(log_b, "b", 10.0, [] { return 0.0; });
  EXPECT_EQ(reader.snapshot().view(0).worker, "a");

  // A racing writer's half-flushed line is not consumed...
  const std::string record =
      R"({"job":1,"name":"job1","state":"leased","attempt":1,"worker":"c","lease":1,"deadline":9})";
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << record.substr(0, 40);
  }
  EXPECT_EQ(reader.snapshot().view(1).state, runtime::lease_view::phase::pending);
  // ...and folds in whole once the rest of the line (and newline) lands.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << record.substr(40) << "\n";
  }
  EXPECT_EQ(reader.snapshot().view(1).worker, "c");
  EXPECT_EQ(writer.snapshot().view(1).worker, "c");  // the writer tails too
}

TEST(lease_manager, seeded_protocol_interleavings_keep_at_most_one_owner) {
  // Property test over the *protocol* (not raw records): three managers
  // claim / renew / release / complete four jobs under a shared manual
  // clock that jumps by random amounts (sometimes past deadlines, forcing
  // steals). After every operation, at most one held lease per job may
  // still verify as owned, and the incremental folds agree with a full
  // replay at the end.
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    const fs::path dir =
        fresh_dir("boson_runtime_lease_prop_" + std::to_string(seed));
    const std::string path = (dir / "journal.jsonl").string();
    double now = 0.0;
    const runtime::clock_fn clock = [&now] { return now; };

    std::vector<std::unique_ptr<runtime::journal>> logs;
    std::vector<std::unique_ptr<runtime::lease_manager>> managers;
    const std::vector<std::string> names = {"a", "b", "c"};
    for (const std::string& name : names) {
      logs.push_back(std::make_unique<runtime::journal>(path));
      managers.push_back(
          std::make_unique<runtime::lease_manager>(*logs.back(), name, 10.0, clock));
    }
    std::vector<std::vector<runtime::job_lease>> held(managers.size());

    rng r(seed);
    for (std::size_t step = 0; step < 250; ++step) {
      const std::size_t m = static_cast<std::size_t>(r.uniform_int(0, 2));
      switch (r.uniform_int(0, 5)) {
        case 0:
        case 1: {  // claim a random job
          const std::size_t job = static_cast<std::size_t>(r.uniform_int(0, 3));
          std::optional<runtime::job_lease> lease =
              managers[m]->claim(job, "j" + std::to_string(job));
          if (lease) held[m].push_back(*lease);
          break;
        }
        case 2: {  // heartbeat a random held lease
          if (held[m].empty()) break;
          const std::size_t k =
              static_cast<std::size_t>(r.uniform_int(0, static_cast<long>(held[m].size()) - 1));
          if (!managers[m]->renew(held[m][k]))
            held[m].erase(held[m].begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
        case 3: {  // voluntarily release one
          if (held[m].empty()) break;
          const std::size_t k =
              static_cast<std::size_t>(r.uniform_int(0, static_cast<long>(held[m].size()) - 1));
          managers[m]->release(held[m][k]);
          held[m].erase(held[m].begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
        case 4: {  // commit one (the done-is-terminal path)
          if (held[m].empty()) break;
          const std::size_t k =
              static_cast<std::size_t>(r.uniform_int(0, static_cast<long>(held[m].size()) - 1));
          if (managers[m]->still_owner(held[m][k])) {
            runtime::journal_entry e;
            e.job_index = held[m][k].job_index;
            e.job_name = held[m][k].job_name;
            e.state = runtime::job_state::completed;
            e.attempt = held[m][k].attempt;
            e.worker = names[m];
            e.lease_id = held[m][k].lease_id;
            e.stamp = now;
            logs[m]->append(e);
          }
          held[m].erase(held[m].begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
        case 5:  // time marches (sometimes past a deadline)
          now += r.uniform(0.0, 6.0);
          break;
      }

      // Invariant: per job, at most one held lease still verifies as owned.
      for (std::size_t job = 0; job < 4; ++job) {
        std::size_t owners = 0;
        for (std::size_t i = 0; i < managers.size(); ++i)
          for (const runtime::job_lease& lease : held[i])
            if (lease.job_index == job && managers[i]->still_owner(lease)) ++owners;
        ASSERT_LE(owners, 1u) << "seed " << seed << " step " << step << " job " << job;
      }
    }

    const auto entries = runtime::journal::replay(path);
    expect_single_owner_throughout(entries);
    const runtime::lease_table replayed = runtime::lease_table::resolve(entries);
    for (std::size_t job = 0; job < 4; ++job) {
      const runtime::lease_view truth = replayed.view(job);
      for (const auto& manager : managers) {
        const runtime::lease_view folded = manager->snapshot().view(job);
        EXPECT_EQ(folded.state, truth.state) << "seed " << seed << " job " << job;
        EXPECT_EQ(folded.worker, truth.worker);
        EXPECT_EQ(folded.lease_id, truth.lease_id);
      }
    }
  }
}

// ------------------------------------------------------ elastic scheduler --

TEST(scheduler, concurrent_elastic_workers_cover_the_campaign_exactly_once) {
  // Two unsharded scheduler processes' worth of workers race over one
  // campaign directory; leases keep them disjoint with no static partition.
  const fs::path dir = fresh_dir("boson_runtime_sched_elastic");
  std::atomic<std::size_t> executed_a{0};
  std::atomic<std::size_t> executed_b{0};

  runtime::scheduler_report report_a;
  runtime::scheduler_report report_b;
  const auto run_worker = [&dir](const std::string& worker,
                                 std::atomic<std::size_t>& executed,
                                 runtime::scheduler_report& out) {
    runtime::scheduler_options options;
    options.campaign_dir = dir.string();
    options.worker_id = worker;
    options.executor = counting_executor(executed);
    out = runtime::scheduler(synthetic_campaign(), options).run();
  };
  std::thread ta(run_worker, "alpha", std::ref(executed_a), std::ref(report_a));
  std::thread tb(run_worker, "beta", std::ref(executed_b), std::ref(report_b));
  ta.join();
  tb.join();

  EXPECT_EQ(executed_a.load() + executed_b.load(), 12u);
  EXPECT_EQ(report_a.completed + report_b.completed, 12u);
  EXPECT_EQ(report_a.claimed + report_b.claimed, 12u);
  EXPECT_EQ(report_a.stolen + report_b.stolen, 0u);  // nobody died
  EXPECT_EQ(runtime::result_store::load(dir.string()).size(), 12u);
  EXPECT_EQ(result_line_count(dir), 12u);  // exactly once, not latest-wins
  expect_single_owner_throughout(
      runtime::journal::replay(runtime::journal_path(dir.string())));
}

TEST(scheduler, losing_a_lease_mid_run_forfeits_instead_of_double_reporting) {
  // A thief steals the job while the worker is mid-iteration (the manual
  // clock jumps past the deadline); the worker's next heartbeat fails, the
  // attempt aborts, and no result row is committed by the loser.
  const fs::path dir = fresh_dir("boson_runtime_sched_lost");
  runtime::campaign_spec spec = synthetic_campaign();
  spec.methods = {"ls"};
  spec.seeds = {1};
  spec.overrides.clear();
  spec.scheduler.workers = 1;
  spec.scheduler.max_retries = 0;

  std::atomic<double> now{0.0};
  std::atomic<std::size_t> executed{0};
  runtime::fault_injector faults;
  faults.arm(runtime::fault_point::mid_run, 2, [&](const runtime::fault_site& site) {
    // Simulate a stalled worker: time leaps past the deadline and another
    // worker takes the job over, then abandons it (releases) so only the
    // exactly-once accounting is at stake.
    now.store(100.0);
    runtime::journal log(runtime::journal_path(dir.string()));
    runtime::lease_manager thief(log, "thief", 10.0, [&now] { return now.load(); });
    std::optional<runtime::job_lease> loot = thief.claim(site.job_index, site.job_name);
    ASSERT_TRUE(loot.has_value());
    EXPECT_TRUE(loot->stolen);
    thief.release(*loot);
  });

  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.executor = chatty_executor(executed, 4);
  options.lease_ttl = 9.0;
  options.clock = [&now] { return now.load(); };
  options.faults = &faults;
  const auto report = runtime::scheduler(spec, options).run();
  EXPECT_EQ(report.lost, 1u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(result_line_count(dir), 0u);  // the loser forfeited

  // A later pass (same worker id is fine — the job is pending again)
  // completes the job; the store ends with exactly one row.
  const auto recovery = runtime::scheduler(spec, options).run();
  EXPECT_EQ(recovery.completed, 1u);
  EXPECT_EQ(result_line_count(dir), 1u);
  expect_single_owner_throughout(
      runtime::journal::replay(runtime::journal_path(dir.string())));
}

TEST(scheduler, cancel_between_checkpoint_and_result_neither_discards_nor_doubles) {
  // Regression: a cancel that lands right after a checkpoint is persisted
  // (and before the result would be appended) must leave the campaign in a
  // state where one resume produces exactly one row, bit-identical to an
  // uninterrupted run.
  runtime::campaign_spec spec;
  spec.name = "cancel_ck";
  spec.devices = {"bend"};
  spec.methods = {"boson_no_relax"};
  spec.seeds = {7};
  spec.base = smoke_base();
  spec.scheduler.workers = 1;
  spec.scheduler.max_retries = 0;
  spec.scheduler.checkpoint_every = 2;

  const fs::path ref_dir = fresh_dir("boson_runtime_cancel_ck_ref");
  runtime::scheduler_options ref_options;
  ref_options.campaign_dir = ref_dir.string();
  ASSERT_EQ(runtime::scheduler(spec, ref_options).run().completed, 1u);

  const fs::path dir = fresh_dir("boson_runtime_cancel_ck");
  runtime::fault_injector faults;
  runtime::scheduler* target = nullptr;
  faults.arm(runtime::fault_point::after_checkpoint, 2,
             [&target](const runtime::fault_site&) { target->cancel(); });
  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.faults = &faults;
  runtime::scheduler first(spec, options);
  target = &first;
  const auto report1 = first.run();
  EXPECT_EQ(report1.cancelled, 1u);
  EXPECT_EQ(report1.completed, 0u);
  EXPECT_EQ(result_line_count(dir), 0u);  // not double-counted later
  ASSERT_TRUE(fs::exists(runtime::checkpoint_path(
      runtime::job_directory(dir.string(), "bend_boson_no_relax_s7"))));

  runtime::scheduler_options resume_options;
  resume_options.campaign_dir = dir.string();
  const auto report2 = runtime::scheduler(spec, resume_options).run();
  EXPECT_EQ(report2.resumed, 1u);
  EXPECT_EQ(report2.completed, 1u);

  const auto rows = runtime::result_store::load(dir.string());
  const auto ref_rows = runtime::result_store::load(ref_dir.string());
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(ref_rows.size(), 1u);
  EXPECT_EQ(result_line_count(dir), 1u);  // neither discarded nor doubled
  EXPECT_EQ(rows[0].attempt, 2u);
  EXPECT_EQ(rows[0].prefab_fom, ref_rows[0].prefab_fom);
  EXPECT_EQ(rows[0].postfab_mean, ref_rows[0].postfab_mean);
  EXPECT_EQ(rows[0].postfab_std, ref_rows[0].postfab_std);
}

TEST(scheduler, steals_an_expired_lease_and_resumes_bit_identically) {
  // A worker claimed the job, checkpointed, and "died" (its lease simply
  // never moves again). A second worker with a later clock proves the lease
  // expired, steals the job, resumes from the dead worker's checkpoint, and
  // produces byte-identical artifacts to an uninterrupted run.
  runtime::campaign_spec spec;
  spec.name = "steal_resume";
  spec.devices = {"bend"};
  spec.methods = {"boson_no_relax"};
  spec.seeds = {7};
  spec.base = smoke_base();
  spec.scheduler.workers = 1;
  spec.scheduler.max_retries = 0;
  spec.scheduler.checkpoint_every = 2;

  const fs::path ref_dir = fresh_dir("boson_runtime_steal_ref");
  runtime::scheduler_options ref_options;
  ref_options.campaign_dir = ref_dir.string();
  ASSERT_EQ(runtime::scheduler(spec, ref_options).run().completed, 1u);

  // Interrupt a real run mid-way (leaves the iteration-4 checkpoint), then
  // re-lease the job to a ghost worker that never comes back.
  const fs::path dir = fresh_dir("boson_runtime_steal");
  struct cancelling_watcher : api::observer {
    runtime::scheduler* target = nullptr;
    void on_event(const api::progress_event& event) override {
      if (event.kind == api::progress_event::phase::iteration_finished &&
          event.iteration >= 3)
        target->cancel();
    }
  } watcher;
  runtime::scheduler_options options;
  options.campaign_dir = dir.string();
  options.watcher = &watcher;
  runtime::scheduler first(spec, options);
  watcher.target = &first;
  ASSERT_EQ(first.run().cancelled, 1u);
  ASSERT_TRUE(fs::exists(runtime::checkpoint_path(
      runtime::job_directory(dir.string(), "bend_boson_no_relax_s7"))));
  {
    runtime::journal log(runtime::journal_path(dir.string()));
    runtime::lease_manager ghost(log, "ghost", 1000.0, [] { return 0.0; });
    ASSERT_TRUE(ghost.claim(0, "bend_boson_no_relax_s7").has_value());
  }

  // The rescuer's clock sits past the ghost's deadline: instant takeover.
  runtime::scheduler_options rescue_options;
  rescue_options.campaign_dir = dir.string();
  rescue_options.worker_id = "rescuer";
  rescue_options.clock = [] { return 2000.0; };
  const auto rescue = runtime::scheduler(spec, rescue_options).run();
  EXPECT_EQ(rescue.stolen, 1u);
  EXPECT_EQ(rescue.resumed, 1u);
  EXPECT_EQ(rescue.completed, 1u);

  const auto rows = runtime::result_store::load(dir.string());
  const auto ref_rows = runtime::result_store::load(ref_dir.string());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].prefab_fom, ref_rows[0].prefab_fom);
  EXPECT_EQ(rows[0].postfab_mean, ref_rows[0].postfab_mean);
  EXPECT_EQ(rows[0].postfab_std, ref_rows[0].postfab_std);

  const auto read = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const std::string ref_csv =
      read(fs::path(ref_dir) / "jobs" / "bend_boson_no_relax_s7" / "trajectory.csv");
  const std::string csv =
      read(fs::path(dir) / "jobs" / "bend_boson_no_relax_s7" / "trajectory.csv");
  ASSERT_FALSE(ref_csv.empty());
  EXPECT_EQ(csv, ref_csv);
  expect_single_owner_throughout(
      runtime::journal::replay(runtime::journal_path(dir.string())));
}

// ------------------------------------------------- multi-process kill matrix --

/// One forked CLI-less worker: runs an elastic scheduler over `spec` in
/// `dir` under a constant clock (0.0), optionally armed to SIGKILL itself at
/// the `kill_at_claim`-th won lease. The shard filter pins which jobs the
/// worker may see so the kill schedule is deterministic (claims happen in
/// job order with one thread and no competition inside the slice).
pid_t fork_campaign_worker(const runtime::campaign_spec& spec, const fs::path& dir,
                           const std::string& worker, runtime::shard_range shard,
                           std::size_t kill_at_claim) {
  return fork_worker([&spec, &dir, worker, shard, kill_at_claim] {
    runtime::fault_injector faults;
    if (kill_at_claim > 0)
      faults.arm(runtime::fault_point::after_lease, kill_at_claim, runtime::kill_process);
    std::atomic<std::size_t> executed{0};
    runtime::scheduler_options options;
    options.campaign_dir = dir.string();
    options.worker_id = worker;
    options.shard = shard;
    options.workers = 1;  // one thread -> claims in job order
    options.lease_ttl = 5.0;
    options.clock = [] { return 0.0; };
    options.executor = counting_executor(executed);
    options.faults = kill_at_claim > 0 ? &faults : nullptr;
    (void)runtime::scheduler(spec, options).run();
  });
}

TEST(scheduler, sigkilled_workers_jobs_are_stolen_and_finished_exactly_once) {
  // Three real worker processes split the 12-job campaign; two are
  // SIGKILLed at staggered kill points while holding leases. A recovery
  // worker (clock past every dead lease's deadline) steals and finishes:
  // 12/12 coverage, one result row per job, single-owner throughout.
  const fs::path dir = fresh_dir("boson_runtime_sched_kill");
  const runtime::campaign_spec spec = synthetic_campaign();

  // Shard slices have 4 jobs each. A kills itself claiming its 2nd job
  // (1 completed, 1 leased-at-death, 2 never claimed); B claiming its 4th
  // (3 completed, 1 leased-at-death); C survives and completes its 4.
  const pid_t a = fork_campaign_worker(spec, dir, "wa", {0, 3}, 2);
  const pid_t b = fork_campaign_worker(spec, dir, "wb", {1, 3}, 4);
  const pid_t c = fork_campaign_worker(spec, dir, "wc", {2, 3}, 0);
  EXPECT_EQ(wait_worker(a), child_end::sigkilled);
  EXPECT_EQ(wait_worker(b), child_end::sigkilled);
  EXPECT_EQ(wait_worker(c), child_end::clean_exit);
  ASSERT_EQ(result_line_count(dir), 8u);  // 1 + 3 + 4 made it before the kills

  std::atomic<std::size_t> executed{0};
  runtime::scheduler_options rescue;
  rescue.campaign_dir = dir.string();
  rescue.worker_id = "rescuer";
  rescue.clock = [] { return 100.0; };  // past every dead deadline: no waiting
  rescue.executor = counting_executor(executed);
  const auto report = runtime::scheduler(spec, rescue).run();
  EXPECT_EQ(report.skipped, 8u);
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.stolen, 2u);  // the two leases that died with their workers
  EXPECT_EQ(report.failed, 0u);

  const auto rows = runtime::result_store::load(dir.string());
  ASSERT_EQ(rows.size(), 12u);
  EXPECT_EQ(result_line_count(dir), 12u);  // exactly once — no duplicates
  std::set<std::size_t> jobs;
  for (const auto& row : rows) jobs.insert(row.job_index);
  EXPECT_EQ(jobs.size(), 12u);
  const auto entries = runtime::journal::replay(runtime::journal_path(dir.string()));
  expect_single_owner_throughout(entries);
  std::size_t expired = 0;
  for (const auto& e : entries)
    expired += e.state == runtime::job_state::lease_expired ? 1 : 0;
  EXPECT_EQ(expired, 2u);  // each steal wrote its takeover prologue
}

TEST(scheduler, losing_half_the_fleet_mid_campaign_still_reaches_full_coverage) {
  // Four workers, two SIGKILLed at staggered claims — the surviving half of
  // the fleet plus one recovery pass still reach 12/12.
  const fs::path dir = fresh_dir("boson_runtime_sched_half_fleet");
  const runtime::campaign_spec spec = synthetic_campaign();

  const pid_t w0 = fork_campaign_worker(spec, dir, "w0", {0, 4}, 1);  // dies instantly
  const pid_t w1 = fork_campaign_worker(spec, dir, "w1", {1, 4}, 3);
  const pid_t w2 = fork_campaign_worker(spec, dir, "w2", {2, 4}, 0);
  const pid_t w3 = fork_campaign_worker(spec, dir, "w3", {3, 4}, 0);
  EXPECT_EQ(wait_worker(w0), child_end::sigkilled);
  EXPECT_EQ(wait_worker(w1), child_end::sigkilled);
  EXPECT_EQ(wait_worker(w2), child_end::clean_exit);
  EXPECT_EQ(wait_worker(w3), child_end::clean_exit);

  std::atomic<std::size_t> executed{0};
  runtime::scheduler_options rescue;
  rescue.campaign_dir = dir.string();
  rescue.worker_id = "rescuer";
  rescue.clock = [] { return 100.0; };
  rescue.executor = counting_executor(executed);
  const auto report = runtime::scheduler(spec, rescue).run();
  EXPECT_EQ(report.completed + report.skipped, 12u);
  EXPECT_EQ(report.stolen, 2u);

  ASSERT_EQ(runtime::result_store::load(dir.string()).size(), 12u);
  EXPECT_EQ(result_line_count(dir), 12u);
  expect_single_owner_throughout(
      runtime::journal::replay(runtime::journal_path(dir.string())));
}

}  // namespace
}  // namespace boson
