#include "io/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace boson::io {

json_value& json_value::operator[](const std::string& key) {
  if (kind_ == kind::null) kind_ = kind::object;
  require(kind_ == kind::object, "json_value: operator[] on a non-object");
  for (auto& [k, v] : members_)
    if (k == key) return v;
  members_.emplace_back(key, json_value());
  return members_.back().second;
}

json_value& json_value::push_back(json_value v) {
  if (kind_ == kind::null) kind_ = kind::array;
  require(kind_ == kind::array, "json_value: push_back on a non-array");
  elements_.push_back(std::move(v));
  return elements_.back();
}

json_value json_value::from_map(const std::map<std::string, double>& m) {
  json_value obj = object();
  for (const auto& [k, v] : m) obj[k] = v;
  return obj;
}

const char* json_value::kind_name() const {
  switch (kind_) {
    case kind::null: return "null";
    case kind::boolean: return "boolean";
    case kind::number: return "number";
    case kind::string: return "string";
    case kind::object: return "object";
    case kind::array: return "array";
  }
  return "?";
}

bool json_value::as_bool() const {
  require(kind_ == kind::boolean,
          std::string("json_value: expected a boolean, got ") + kind_name());
  return bool_;
}

double json_value::as_number() const {
  require(kind_ == kind::number,
          std::string("json_value: expected a number, got ") + kind_name());
  return number_;
}

const std::string& json_value::as_string() const {
  require(kind_ == kind::string,
          std::string("json_value: expected a string, got ") + kind_name());
  return string_;
}

const json_value* json_value::find(const std::string& key) const {
  require(kind_ == kind::object,
          std::string("json_value: member lookup on a ") + kind_name());
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

const json_value& json_value::at(const std::string& key) const {
  const json_value* v = find(key);
  require(v != nullptr, "json_value: missing key '" + key + "'");
  return *v;
}

const std::vector<std::pair<std::string, json_value>>& json_value::members() const {
  require(kind_ == kind::object,
          std::string("json_value: members() on a ") + kind_name());
  return members_;
}

const std::vector<json_value>& json_value::elements() const {
  require(kind_ == kind::array,
          std::string("json_value: elements() on a ") + kind_name());
  return elements_;
}

std::size_t json_value::size() const {
  if (kind_ == kind::object) return members_.size();
  if (kind_ == kind::array) return elements_.size();
  return 0;
}

// ---------------------------------------------------------------- parser ---

namespace {

/// Strict recursive-descent JSON parser tracking line/column for messages.
class parser {
 public:
  explicit parser(const std::string& text) : text_(text) {}

  json_value run() {
    skip_whitespace();
    json_value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw json_parse_error("json: " + std::to_string(line) + ":" + std::to_string(col) +
                           ": " + message);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  void expect(char c, const char* context) {
    if (eof() || peek() != c)
      fail(std::string("expected '") + c + "' " + context +
           (eof() ? " (end of input)" : std::string(", got '") + peek() + "'"));
    ++pos_;
  }

  bool consume_literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  json_value parse_value() {
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return json_value(parse_string());
      case 't':
        if (consume_literal("true")) return json_value(true);
        fail("invalid literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return json_value(false);
        fail("invalid literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return json_value();
        fail("invalid literal (expected 'null')");
      default: return parse_number();
    }
  }

  json_value parse_object() {
    expect('{', "to open an object");
    json_value obj = json_value::object();
    skip_whitespace();
    if (!eof() && peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_whitespace();
      if (eof() || peek() != '"') fail("expected a string object key");
      const std::string key = parse_string();
      if (obj.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      skip_whitespace();
      expect(':', "after object key");
      skip_whitespace();
      obj[key] = parse_value();
      skip_whitespace();
      if (eof()) fail("unterminated object (expected ',' or '}')");
      const char c = next();
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  json_value parse_array() {
    expect('[', "to open an array");
    json_value arr = json_value::array();
    skip_whitespace();
    if (!eof() && peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      skip_whitespace();
      arr.push_back(parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated array (expected ',' or ']')");
      const char c = next();
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"', "to open a string");
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          const unsigned code = parse_hex4();
          if (code >= 0xDC00 && code <= 0xDFFF)
            fail("unpaired low surrogate in \\u escape");
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
              fail("unpaired high surrogate in \\u escape");
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF)
              fail("invalid low surrogate in \\u escape");
            append_utf8(out, 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00));
          } else {
            append_utf8(out, code);
          }
          break;
        }
        default: fail(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      const char c = next();
      code <<= 4;
      if (c >= '0' && c <= '9') code += static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code += static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code += static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  /// RFC 8259 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  /// — rejects the laxer forms strtod accepts ("01", "1.", ".5", "+1").
  static bool is_json_number(const std::string& t) {
    const auto digit = [&](std::size_t i) { return i < t.size() && t[i] >= '0' && t[i] <= '9'; };
    std::size_t i = 0;
    if (i < t.size() && t[i] == '-') ++i;
    if (!digit(i)) return false;
    if (t[i] == '0') ++i;
    else while (digit(i)) ++i;
    if (i < t.size() && t[i] == '.') {
      ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
      ++i;
      if (i < t.size() && (t[i] == '+' || t[i] == '-')) ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    return i == t.size();
  }

  json_value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' || peek() == 'e' ||
                      peek() == 'E' || peek() == '+' || peek() == '-'))
      ++pos_;
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty()) fail(std::string("unexpected character '") + peek() + "'");
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (!is_json_number(token) || end == nullptr || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
    return json_value(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

json_value json_value::parse(const std::string& text) { return parser(text).run(); }

json_value json_value::parse_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw io_error("json_value: cannot open " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  try {
    return parse(buffer.str());
  } catch (const json_parse_error& e) {
    throw json_parse_error(path + ": " + e.what());
  }
}

// ---------------------------------------------------------------- writer ---

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

}  // namespace

void json_value::dump_impl(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
  const std::string pad_close = pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* nl = pretty ? "\n" : "";

  switch (kind_) {
    case kind::null: out += "null"; break;
    case kind::boolean: out += bool_ ? "true" : "false"; break;
    case kind::number: number_into(out, number_); break;
    case kind::string: escape_into(out, string_); break;
    case kind::object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        escape_into(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_impl(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += pad_close;
      out += '}';
      break;
    }
    case kind::array: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        out += pad;
        elements_[i].dump_impl(out, indent, depth + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += nl;
      }
      out += pad_close;
      out += ']';
      break;
    }
  }
}

std::string json_value::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

void json_value::write_file(const std::string& path, int indent) const {
  std::ofstream f(path);
  if (!f) throw io_error("json_value: cannot open " + path);
  f << dump(indent) << '\n';
  if (!f) throw io_error("json_value: write failed for " + path);
}

}  // namespace boson::io
