/// \file handler.cpp
/// The JSON control plane: routes `http_request`s onto `campaign_service`
/// operations and renders the responses. Kept transport-agnostic — tests
/// call the handler directly, `boson_serve` mounts it on `net::http_server`
/// — and strict: unknown routes 404, wrong verbs 405, malformed inputs 400,
/// quota 429, all through the uniform error envelope (`net::error_response`
/// via `http_error`, which the transport also applies to handler throws).

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "service/service.h"
#include "sim/backend.h"
#include "sim/cache.h"

namespace boson::service {

namespace {

/// Low-cardinality endpoint label of a request path — route shapes, never
/// raw paths, so hostile URLs cannot mint unbounded metric series.
std::string endpoint_label(const std::string& path) {
  if (path == "/healthz") return "healthz";
  if (path == "/v1/metrics") return "metrics";
  if (path == "/v1/campaigns") return "campaigns";
  const std::string prefix = "/v1/campaigns/";
  if (path.rfind(prefix, 0) == 0) {
    const std::string rest = path.substr(prefix.size());
    const std::size_t slash = rest.find('/');
    if (slash == std::string::npos) return "campaign";
    const std::string action = rest.substr(slash + 1);
    if (action == "jobs" || action == "events" || action == "report" ||
        action == "cancel")
      return "campaign." + action;
    return "campaign.unknown";
  }
  return "unknown";
}

const char* status_class(int status) {
  if (status >= 500) return "5xx";
  if (status >= 400) return "4xx";
  if (status >= 300) return "3xx";
  return "2xx";
}

/// One request into the obs registry: a per-endpoint × status-class counter
/// and a per-endpoint latency histogram.
void record_request(const std::string& endpoint, int status, double seconds) {
  auto& reg = obs::registry::global();
  reg.get_counter("http.requests_total",
                  {{"endpoint", endpoint}, {"class", status_class(status)}})
      .inc();
  reg.get_histogram("http.request_seconds", {{"endpoint", endpoint}})
      .observe(seconds);
}

/// Constant-time string equality: the comparison cost depends only on the
/// *presented* token's length, never on how many leading bytes match a real
/// token — a timing probe learns nothing about stored secrets.
bool constant_time_equal(const std::string& a, const std::string& b) {
  unsigned char diff = static_cast<unsigned char>((a.size() ^ b.size()) != 0);
  const std::size_t bn = b.empty() ? 1 : b.size();
  for (std::size_t i = 0; i < a.size(); ++i)
    diff |= static_cast<unsigned char>(a[i] ^ (b.empty() ? 0 : b[i % bn]));
  return diff == 0;
}

void require_method(const net::http_request& req, const std::string& method) {
  if (req.method != method)
    throw net::http_error(405, req.method + " is not supported here (use " +
                                   method + ")");
}

/// Parse a non-negative decimal query parameter (cursor, wait).
double query_number(const net::http_request& req, const std::string& name,
                    double fallback) {
  const auto it = req.query.find(name);
  if (it == req.query.end()) return fallback;
  const std::string& text = it->second;
  const net::http_error malformed(400, "query parameter '" + name +
                                           "' must be a non-negative number, got '" +
                                           text + "'");
  // Strict shape first — std::stod would accept a numeric *prefix* ("1.2.3"
  // parses as 1.2), signs, and hex/inf/nan spellings.
  if (text.empty() || text.find_first_not_of("0123456789.") != std::string::npos ||
      std::count(text.begin(), text.end(), '.') > 1)
    throw malformed;
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::invalid_argument&) {  // "." — no digits at all
    throw malformed;
  } catch (const std::out_of_range&) {
    throw net::http_error(400, "query parameter '" + name + "' is out of range");
  }
  if (consumed != text.size()) throw malformed;
  return value;
}

net::http_response json_response(int status, const io::json_value& v) {
  net::http_response res;
  res.status = status;
  res.body = v.dump(-1) + "\n";
  return res;
}

runtime::campaign_spec parse_spec(const net::http_request& req) {
  if (req.body.empty()) throw net::http_error(400, "request body must be a campaign spec");
  io::json_value v;
  try {
    v = io::json_value::parse(req.body);
  } catch (const error& e) {
    throw net::http_error(400, std::string("malformed JSON body: ") + e.what());
  }
  // from_json/expand throw bad_argument with precise messages; the transport
  // maps bad_argument to 400, which is exactly right for a bad spec.
  return runtime::campaign_spec::from_json(v);
}

io::json_value metrics_json(const service_metrics& m) {
  io::json_value v = io::json_value::object();
  io::json_value& campaigns = v["campaigns"] = io::json_value::object();
  campaigns["queued"] = m.campaigns_queued;
  campaigns["running"] = m.campaigns_running;
  campaigns["done"] = m.campaigns_done;
  campaigns["failed"] = m.campaigns_failed;
  campaigns["cancelled"] = m.campaigns_cancelled;

  io::json_value& jobs = v["jobs"] = io::json_value::object();
  jobs["live_leases"] = m.live_leases;
  jobs["completed"] = m.jobs_completed;
  jobs["run_seconds"] = m.run_seconds;
  jobs["jobs_per_second"] = m.jobs_per_second();

  v["requests"] = m.requests;

  // The simulation-layer gauges the paper's reuse optimizations report:
  // shared-engine cache and nearby-operator reuse, process-wide.
  const sim::engine_cache::cache_stats cache = sim::engine_cache::global().stats();
  io::json_value& ec = v["engine_cache"] = io::json_value::object();
  ec["hits"] = cache.hits;
  ec["misses"] = cache.misses;
  ec["evictions"] = cache.evictions;
  ec["entries"] = cache.entries;
  ec["reuse_hits"] = cache.reuse_hits;

  const sim::reuse_stats reuse = sim::reuse_statistics();
  io::json_value& ru = v["nearby_reuse"] = io::json_value::object();
  ru["prepares_avoided"] = reuse.prepares_avoided;
  ru["refinement_solves"] = reuse.refinement_solves;
  ru["refinement_iterations"] = reuse.refinement_iterations;
  ru["fallbacks"] = reuse.fallbacks;
  ru["recycle_guesses"] = reuse.recycle_guesses;
  ru["solution_reuses"] = reuse.solution_reuses;
  return v;
}

}  // namespace

std::string campaign_service::authenticate(const net::http_request& req) const {
  const std::string* header = req.header("X-Boson-Tenant");
  const auto validated = [](const std::string& tenant) {
    if (!valid_tenant(tenant))
      throw net::http_error(400, "invalid tenant '" + tenant +
                                     "' (lowercase [a-z0-9_-], at most 32 chars)");
    return tenant;
  };
  if (tenant_tokens_.empty())  // legacy header auth (no tenants.json)
    return validated(header != nullptr ? *header : "default");

  const std::string* auth = req.header("Authorization");
  if (auth == nullptr)
    throw net::http_error(401, "missing Authorization header (Bearer token required)");
  std::string token;
  if (auth->size() > 7) {
    const std::string scheme = auth->substr(0, 7);
    if (scheme == "Bearer " || scheme == "bearer ") token = auth->substr(7);
  }
  while (!token.empty() && token.front() == ' ') token.erase(token.begin());
  while (!token.empty() && token.back() == ' ') token.pop_back();
  if (token.empty())
    throw net::http_error(401, "malformed Authorization header (expected 'Bearer <token>')");

  // Check every tenant's token (no early exit): the presented token's
  // identity is decided by content, and rejection cost is uniform.
  std::string resolved;
  for (const auto& [tenant, expected] : tenant_tokens_)
    if (constant_time_equal(token, expected)) resolved = tenant;
  if (resolved.empty()) throw net::http_error(401, "invalid bearer token");
  if (header != nullptr && *header != resolved)
    throw net::http_error(401,
                          "X-Boson-Tenant does not match the bearer token's tenant");
  return validated(resolved);
}

net::http_handler campaign_service::handler() {
  // The instrumented wrapper: route the request, then record its endpoint,
  // status class, and latency — also when the route throws, using the same
  // exception -> status mapping as the transport (http_server), so 4xx abuse
  // traffic is distinguishable from served load.
  return [this](const net::http_request& req) -> net::http_response {
    const auto started = std::chrono::steady_clock::now();
    const std::string endpoint = endpoint_label(req.path);
    const auto record = [&](int status) {
      record_request(endpoint, status,
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started)
                         .count());
    };
    try {
      net::http_response res = route(req);
      record(res.status);
      return res;
    } catch (const net::http_error& e) {
      record(e.status());
      throw;
    } catch (const bad_argument&) {
      record(400);
      throw;
    } catch (...) {
      record(500);
      throw;
    }
  };
}

net::http_response campaign_service::route(const net::http_request& req) {
  if (req.path == "/healthz") {
    require_method(req, "GET");
    io::json_value v = io::json_value::object();
    v["status"] = "ok";
    return json_response(200, v);
  }
  if (req.path == "/v1/metrics") {
    require_method(req, "GET");
    const auto format = req.query.find("format");
    if (format != req.query.end() && format->second == "prometheus") {
      // Publish the registry-external service counters as gauges at scrape
      // time, then render the whole registry — sim/runtime counters, the
      // request histograms, and these service-level series in one page.
      // Touch the sim families first so the migrated counters are on the
      // page even before any simulation has run in this process.
      (void)sim::engine_cache::global().stats();
      (void)sim::reuse_statistics();
      const service_metrics m = metrics();
      auto& reg = obs::registry::global();
      reg.get_gauge("service.campaigns_queued").set(static_cast<double>(m.campaigns_queued));
      reg.get_gauge("service.campaigns_running").set(static_cast<double>(m.campaigns_running));
      reg.get_gauge("service.campaigns_done").set(static_cast<double>(m.campaigns_done));
      reg.get_gauge("service.campaigns_failed").set(static_cast<double>(m.campaigns_failed));
      reg.get_gauge("service.campaigns_cancelled").set(static_cast<double>(m.campaigns_cancelled));
      reg.get_gauge("service.live_leases").set(static_cast<double>(m.live_leases));
      reg.get_gauge("service.jobs_completed").set(static_cast<double>(m.jobs_completed));
      reg.get_gauge("service.run_seconds").set(m.run_seconds);
      reg.get_gauge("service.jobs_per_second").set(m.jobs_per_second());

      net::http_response res;
      res.content_type = "text/plain; version=0.0.4; charset=utf-8";
      res.body = reg.to_prometheus();
      return res;
    }
    if (format != req.query.end() && format->second != "json")
      throw net::http_error(400, "unknown metrics format '" + format->second +
                                     "' (expected json or prometheus)");
    return json_response(200, metrics_json(metrics()));
  }

  if (req.path == "/v1/campaigns") {
    const std::string tenant = authenticate(req);
    if (req.method == "POST") {
      try {
        const campaign_record record = submit(tenant, parse_spec(req));
        return json_response(201, record.to_json());
      } catch (const quota_error& e) {
        throw net::http_error(429, e.what());
      }
    }
    require_method(req, "GET");
    io::json_value arr = io::json_value::array();
    for (const campaign_record& r : list(tenant)) arr.push_back(r.to_json());
    io::json_value v = io::json_value::object();
    v["campaigns"] = std::move(arr);
    return json_response(200, v);
  }

  const std::string prefix = "/v1/campaigns/";
  if (req.path.rfind(prefix, 0) == 0) {
    const std::string tenant = authenticate(req);
    const std::string rest = req.path.substr(prefix.size());
    const std::size_t slash = rest.find('/');
    const std::string id = rest.substr(0, slash);
    const std::string action =
        slash == std::string::npos ? "" : rest.substr(slash + 1);
    if (id.empty()) throw net::http_error(404, "missing campaign id");

    if (action.empty()) {
      if (req.method == "DELETE")
        return json_response(200, remove(tenant, id).to_json());
      if (req.method != "GET")
        throw net::http_error(405, req.method +
                                       " is not supported here (use GET or DELETE)");
      return json_response(200, status(tenant, id, false).to_json(false));
    }
    if (action == "jobs") {
      require_method(req, "GET");
      return json_response(200, status(tenant, id, true).to_json(true));
    }
    if (action == "events") {
      require_method(req, "GET");
      const std::streamoff cursor =
          static_cast<std::streamoff>(query_number(req, "cursor", 0.0));
      // Long-poll bound: clients pass wait=<s> (capped well under every
      // read timeout in the stack) and re-arm with the returned cursor.
      const double wait = std::min(query_number(req, "wait", 0.0), 30.0);
      const event_page page = events(tenant, id, cursor, wait);

      net::http_response res;
      res.content_type = "application/x-ndjson";
      res.chunked = true;  // one chunk per journal record
      for (const std::string& line : page.lines) res.body += line + "\n";
      res.headers.emplace_back("X-Boson-Cursor",
                               std::to_string(page.next_cursor));
      return res;
    }
    if (action == "report") {
      require_method(req, "GET");
      const auto format = req.query.find("format");
      if (format != req.query.end() && format->second == "text") {
        net::http_response res;
        res.content_type = "text/plain; charset=utf-8";
        res.body = report_text(tenant, id);
        return res;
      }
      if (format != req.query.end() && format->second != "json")
        throw net::http_error(400, "unknown report format '" + format->second +
                                       "' (expected json or text)");
      return json_response(200, report_json(tenant, id));
    }
    if (action == "cancel") {
      require_method(req, "POST");
      return json_response(200, cancel(tenant, id).to_json());
    }
    throw net::http_error(404, "unknown campaign action '" + action + "'");
  }

  throw net::http_error(404, "no route for '" + req.path + "'");
}

}  // namespace boson::service
