#pragma once

#include <cstddef>

#include "common/error.h"
#include "common/types.h"

namespace boson {

/// Uniform 2-D simulation grid. Cell (ix, iy) is centered at
/// (x0 + (ix + 0.5) dx, y0 + (iy + 0.5) dy); all lengths in micrometers.
struct grid2d {
  std::size_t nx = 0;
  std::size_t ny = 0;
  double dx = 0.0;
  double dy = 0.0;
  double x0 = 0.0;
  double y0 = 0.0;

  std::size_t cell_count() const { return nx * ny; }
  double width() const { return static_cast<double>(nx) * dx; }
  double height() const { return static_cast<double>(ny) * dy; }

  double x_center(std::size_t ix) const { return x0 + (static_cast<double>(ix) + 0.5) * dx; }
  double y_center(std::size_t iy) const { return y0 + (static_cast<double>(iy) + 0.5) * dy; }

  /// Cell index containing physical coordinate x (clamped to range).
  std::size_t ix_of(double x) const {
    const double t = (x - x0) / dx;
    if (t <= 0.0) return 0;
    const auto i = static_cast<std::size_t>(t);
    return i >= nx ? nx - 1 : i;
  }
  std::size_t iy_of(double y) const {
    const double t = (y - y0) / dy;
    if (t <= 0.0) return 0;
    const auto i = static_cast<std::size_t>(t);
    return i >= ny ? ny - 1 : i;
  }
};

/// Axis-aligned rectangular window of grid cells; identifies the design
/// region (where the optimizer controls the pattern) inside a simulation.
struct cell_window {
  std::size_t ix0 = 0;
  std::size_t iy0 = 0;
  std::size_t nx = 0;
  std::size_t ny = 0;

  bool contains(std::size_t ix, std::size_t iy) const {
    return ix >= ix0 && ix < ix0 + nx && iy >= iy0 && iy < iy0 + ny;
  }

  void validate_within(const grid2d& g) const {
    require(ix0 + nx <= g.nx && iy0 + ny <= g.ny, "cell_window: exceeds grid");
  }
};

}  // namespace boson
