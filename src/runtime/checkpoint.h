/// \file checkpoint.h
/// Durable serialization of `core::run_checkpoint`: `<dir>/checkpoint.json`
/// carries the optimizer state (latent variables, Adam moments, RNG stream,
/// worst-case ascent directions, trajectory) with every double hex-encoded
/// bit for bit — the JSON number formatter rounds through "%.12g", which
/// would silently perturb a resumed trajectory — plus `<dir>/checkpoint.pgm`,
/// a human-inspectable preview of the in-flight density. Writes go through a
/// temp-file + rename so a crash mid-write never corrupts the previous
/// snapshot.

#pragma once

#include <string>

#include "common/types.h"
#include "core/run.h"

namespace boson::runtime {

/// Bit-exact double <-> fixed-width (16 char) lowercase hex of the IEEE-754
/// pattern. Round-trips NaNs, infinities, -0.0 and denormals unchanged.
std::string encode_double(double value);
double decode_double(const std::string& hex);

/// Vector forms: space-separated hex words.
std::string encode_dvec(const dvec& values);
dvec decode_dvec(const std::string& text);

/// A checkpoint file: which job wrote it plus the resumable state.
struct checkpoint_file {
  std::string job;  ///< job/experiment name the snapshot belongs to
  core::run_checkpoint state;
};

/// Write `<dir>/checkpoint.json` (atomically, via rename) and — when the
/// snapshot carries a density preview — `<dir>/checkpoint.pgm`.
void save_checkpoint(const std::string& dir, const std::string& job,
                     const core::run_checkpoint& state);

/// Load a checkpoint written by `save_checkpoint`; throws `io_error` /
/// `bad_argument` on unreadable or malformed files.
checkpoint_file load_checkpoint(const std::string& path);

/// The canonical path `save_checkpoint` writes inside `dir`.
std::string checkpoint_path(const std::string& dir);

}  // namespace boson::runtime
