#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "common/env.h"

namespace boson {

namespace {

log_level level_from_env() {
  const std::string s = env_string("BOSON_LOG", "warn");
  if (s == "debug") return log_level::debug;
  if (s == "info") return log_level::info;
  if (s == "warn") return log_level::warn;
  if (s == "error") return log_level::err;
  if (s == "off") return log_level::off;
  return log_level::warn;
}

std::atomic<log_level>& level_storage() {
  static std::atomic<log_level> level{level_from_env()};
  return level;
}

log_format format_from_env() {
  return env_string("BOSON_LOG_FORMAT", "text") == "json" ? log_format::json
                                                          : log_format::text;
}

std::atomic<log_format>& format_storage() {
  static std::atomic<log_format> format{format_from_env()};
  return format;
}

std::atomic<void (*)(const std::string&)> sink_storage{nullptr};

const char* level_tag(log_level level) {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO ";
    case log_level::warn: return "WARN ";
    case log_level::err: return "ERROR";
    default: return "     ";
  }
}

const char* level_word(log_level level) {
  switch (level) {
    case log_level::debug: return "debug";
    case log_level::info: return "info";
    case log_level::warn: return "warn";
    case log_level::err: return "error";
    default: return "off";
  }
}

/// UTC wall-clock with millisecond precision: 2026-08-09T12:34:56.789Z.
std::string wall_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_text(log_level level, const std::string& message,
                        const log_fields& fields) {
  std::string line = wall_timestamp() + " [T" + std::to_string(thread_ordinal()) +
                     "] " + level_tag(level) + " " + message;
  for (const auto& [k, v] : fields) line += " " + k + "=" + v;
  return line;
}

std::string render_json(log_level level, const std::string& message,
                        const log_fields& fields) {
  std::string line = "{\"ts\":\"" + wall_timestamp() + "\",\"level\":\"" +
                     level_word(level) + "\",\"thread\":" +
                     std::to_string(thread_ordinal()) + ",\"msg\":\"" +
                     escape_json(message) + "\"";
  for (const auto& [k, v] : fields)
    line += ",\"" + escape_json(k) + "\":\"" + escape_json(v) + "\"";
  line += "}";
  return line;
}

void emit(const std::string& line) {
  if (auto* sink = sink_storage.load(std::memory_order_acquire)) {
    sink(line);
    return;
  }
  static std::mutex io_mutex;
  const std::lock_guard<std::mutex> lock(io_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace

void set_log_level(log_level level) { level_storage().store(level); }

log_level current_log_level() { return level_storage().load(); }

void set_log_format(log_format format) { format_storage().store(format); }

log_format current_log_format() { return format_storage().load(); }

void set_log_sink(void (*sink)(const std::string& line)) {
  sink_storage.store(sink, std::memory_order_release);
}

std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void log_line(log_level level, const std::string& message) {
  log_line(level, message, {});
}

void log_line(log_level level, const std::string& message, const log_fields& fields) {
  if (level < current_log_level()) return;
  emit(current_log_format() == log_format::json
           ? render_json(level, message, fields)
           : render_text(level, message, fields));
}

}  // namespace boson
