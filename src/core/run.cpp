#include "core/run.h"

#include <algorithm>
#include <optional>

#include "common/log.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "optim/optimizer.h"
#include "optim/schedule.h"
#include "param/regularizer.h"

namespace boson::core {

run_result run_inverse_design(design_problem& problem, const dvec& theta0,
                              const run_options& options) {
  require(theta0.size() == problem.parameterization().num_params(),
          "run_inverse_design: theta0 size mismatch");
  require(options.iterations > 0, "run_inverse_design: iterations must be positive");

  dvec theta = theta0;
  opt::adam optimizer(options.learning_rate);
  const opt::linear_schedule beta_schedule(
      options.beta_start, options.beta_end, 0,
      std::max<std::size_t>(1, options.iterations * 4 / 5));
  const opt::linear_schedule relax_schedule =
      options.relax_epochs > 0 ? opt::linear_schedule(0.0, 1.0, 0, options.relax_epochs)
                               : opt::linear_schedule(1.0);

  robust::corner_sampler sampler(options.sampling, problem.fab().space);
  rng r(options.seed);
  std::optional<robust::worst_case_info> worst;

  run_result result;
  result.trajectory.reserve(options.record_trajectory ? options.iterations : 0);

  require(!(options.erosion_dilation && options.fab_aware),
          "run_inverse_design: erosion/dilation is a non-fab-aware baseline");

  std::size_t start_iteration = 0;
  if (options.resume_state != nullptr) {
    const run_checkpoint& ck = *options.resume_state;
    require(ck.theta.size() == theta.size(),
            "run_inverse_design: resume checkpoint theta size mismatch");
    require(ck.next_iteration <= options.iterations,
            "run_inverse_design: resume checkpoint is beyond this run's iteration count");
    require(ck.total_iterations == options.iterations,
            "run_inverse_design: resume checkpoint was captured for a different "
            "iteration count (BOSON_BENCH_SCALE changed?)");
    theta = ck.theta;
    optimizer.restore(ck.optimizer);
    r.restore_state(ck.rng_state);
    if (ck.has_worst) worst = ck.worst;
    if (options.record_trajectory) result.trajectory = ck.trajectory;
    result.final_loss = ck.final_loss;
    start_iteration = ck.next_iteration;
    log_info("run_inverse_design: resuming at iteration ", start_iteration, "/",
             options.iterations);
  }

  for (std::size_t iter = start_iteration; iter < options.iterations; ++iter) {
    problem.parameterization().set_sharpness(beta_schedule.at(iter));

    // One simulation job per variation corner; the erosion/dilation baseline
    // instead evaluates the nominal pattern plus its morphed variants.
    struct sim_job {
      robust::variation_corner corner;
      int morph = 0;
    };
    std::vector<sim_job> jobs;
    if (options.erosion_dilation) {
      robust::variation_corner nominal;
      nominal.xi.assign(problem.fab().space.eole_terms, 0.0);
      for (const int shift : {0, -1, +1}) jobs.push_back({nominal, shift});
    } else {
      for (auto& corner : sampler.sample(r, worst)) jobs.push_back({std::move(corner), 0});
    }
    std::vector<eval_result> evals(jobs.size());

    const bool wants_worst =
        options.sampling == robust::sampling_strategy::axial_plus_worst && options.fab_aware;

    parallel_for(jobs.size(), [&](std::size_t ci) {
      eval_options o;
      o.fab_aware = options.fab_aware;
      o.dense_objectives = options.dense_objectives;
      o.use_mfs_blur = options.use_mfs_blur;
      o.compute_gradient = true;
      o.objective_override = options.objective_override;
      o.morphology_shift = jobs[ci].morph;
      o.morphology_radius_cells = options.ed_radius_cells;
      o.engine = options.engine;
      o.use_operator_cache = options.use_operator_cache;
      // Harvest variation gradients on the nominal corner for the one-step
      // worst-case ascent used next iteration.
      o.want_var_grads = wants_worst && ci == 0;
      evals[ci] = problem.evaluate(theta, jobs[ci].corner, o);
    });

    // Weighted average of corner losses and gradients (the robust objective).
    double weight_sum = 0.0;
    double loss = 0.0;
    dvec grad(theta.size(), 0.0);
    for (std::size_t ci = 0; ci < jobs.size(); ++ci) {
      const double w = jobs[ci].corner.weight;
      weight_sum += w;
      loss += w * evals[ci].loss;
      for (std::size_t p = 0; p < grad.size(); ++p) grad[p] += w * evals[ci].grad[p];
    }
    loss /= weight_sum;
    for (auto& gv : grad) gv /= weight_sum;

    // Optional total-variation (perimeter) regularization on the pattern.
    if (options.tv_weight > 0.0) {
      array2d<double> rho;
      problem.parameterization().forward(theta, rho);
      array2d<double> d_rho(rho.nx(), rho.ny(), 0.0);
      loss += options.tv_weight * param::total_variation(rho, &d_rho);
      for (auto& v : d_rho) v *= options.tv_weight;
      dvec tv_grad(theta.size(), 0.0);
      problem.parameterization().backward(theta, d_rho, tv_grad);
      for (std::size_t p = 0; p < grad.size(); ++p) grad[p] += tv_grad[p];
    }

    // Conditional subspace relaxation (Eq. 3): blend in the ideal
    // (non-fabricated) objective through the high-dimensional tunnel.
    const double p = options.fab_aware ? relax_schedule.at(iter) : 1.0;
    if (p < 1.0) {
      eval_options ideal;
      ideal.fab_aware = false;
      ideal.dense_objectives = options.dense_objectives;
      ideal.use_mfs_blur = options.use_mfs_blur;
      ideal.compute_gradient = true;
      ideal.objective_override = options.objective_override;
      ideal.engine = options.engine;
      ideal.use_operator_cache = options.use_operator_cache;
      robust::variation_corner nominal;
      nominal.xi.assign(problem.fab().space.eole_terms, 0.0);
      const eval_result ideal_eval = problem.evaluate(theta, nominal, ideal);
      loss = p * loss + (1.0 - p) * ideal_eval.loss;
      for (std::size_t pi = 0; pi < grad.size(); ++pi)
        grad[pi] = p * grad[pi] + (1.0 - p) * ideal_eval.grad[pi];
    }

    if (wants_worst) {
      worst = robust::worst_case_info{evals[0].d_xi, evals[0].d_temperature};
    }

    if (options.record_trajectory || options.on_iteration) {
      iteration_record rec;
      rec.iteration = iter;
      rec.loss = loss;
      rec.metrics = evals[0].metrics;  // nominal-corner metrics (Fig. 5 series)
      if (options.on_iteration) options.on_iteration(rec, options.iterations);
      if (options.record_trajectory) result.trajectory.push_back(std::move(rec));
    }
    result.final_loss = loss;

    optimizer.step(theta, grad);

    // Snapshot *after* the step: the checkpoint restores the state the next
    // iteration would have seen. The final iteration is never checkpointed —
    // its product is the run result itself.
    if (options.checkpoint_every > 0 && options.on_checkpoint &&
        (iter + 1) % options.checkpoint_every == 0 && iter + 1 < options.iterations) {
      run_checkpoint ck;
      ck.next_iteration = iter + 1;
      ck.total_iterations = options.iterations;
      ck.theta = theta;
      ck.optimizer = optimizer.state();
      ck.rng_state = r.save_state();
      ck.has_worst = worst.has_value();
      if (worst) ck.worst = *worst;
      if (options.record_trajectory) ck.trajectory = result.trajectory;
      ck.final_loss = result.final_loss;
      problem.parameterization().forward(theta, ck.design_rho);
      options.on_checkpoint(ck);
    }

    log_debug("iter ", iter, ": loss=", loss, " jobs=", jobs.size());
  }

  result.theta = std::move(theta);
  problem.parameterization().set_sharpness(options.beta_end);
  problem.parameterization().forward(result.theta, result.design_rho);
  return result;
}

}  // namespace boson::core
