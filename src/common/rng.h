#pragma once

#include <cstdint>
#include <random>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/types.h"

namespace boson {

/// Deterministic random number generator.
///
/// Every stochastic component (Monte-Carlo variation sampling, random
/// initialization, EOLE field draws) takes an `rng` so experiments are
/// reproducible from a single seed. `fork` derives an independent stream,
/// which keeps results stable when work is distributed across threads.
class rng {
 public:
  explicit rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed), seed_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    require(lo <= hi, "rng::uniform: lo > hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal (mean 0, sd 1) scaled to (mean, sd).
  double normal(double mean = 0.0, double sd = 1.0) {
    return std::normal_distribution<double>(mean, sd)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  long uniform_int(long lo, long hi) {
    require(lo <= hi, "rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<long>(lo, hi)(engine_);
  }

  /// Vector of iid standard normals.
  dvec normal_vector(std::size_t n, double sd = 1.0) {
    dvec v(n);
    for (auto& x : v) x = normal(0.0, sd);
    return v;
  }

  /// Derive an independent generator; `stream` distinguishes siblings.
  rng fork(std::uint64_t stream) const {
    // SplitMix64-style mix of (seed, stream) gives well-separated states.
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return rng(z ^ (z >> 31));
  }

  /// Serialize the full generator state (seed + engine stream position) for
  /// checkpointing. `restore_state` brings a generator back to the exact
  /// stream position, so a resumed run draws the same sequence an
  /// uninterrupted run would have.
  std::string save_state() const {
    std::ostringstream os;
    os << seed_ << ' ' << engine_;
    return os.str();
  }

  void restore_state(const std::string& state) {
    std::istringstream is(state);
    is >> seed_ >> engine_;
    require(!is.fail(), "rng::restore_state: malformed state string");
  }

  std::uint64_t seed() const { return seed_; }
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace boson
