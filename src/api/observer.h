/// \file observer.h
/// Progress streaming for sessions: every lifecycle point of an executing
/// experiment (start, pipeline stage, per-iteration record, artifact write,
/// finish) is delivered to an `observer` as a `progress_event`. The default
/// `log_observer` routes everything through common/log's serialized,
/// timestamped stderr stream, replacing the ad-hoc printf reporting that
/// interleaved garbage under concurrency.

#pragma once

#include <cstddef>
#include <string>
#include <utility>

namespace boson::api {

/// One progress notification from a running session. Within one session,
/// events are emitted from that session's driving thread only, never from
/// corner/sample workers. The campaign runtime, however, drives several
/// sessions concurrently and may share one observer between them, so
/// implementations installed there must be thread-safe (`log_observer` is).
struct progress_event {
  enum class phase {
    experiment_started,   ///< message = experiment name
    stage_started,        ///< message = stage ("optimize", "postfab_monte_carlo", ...)
    iteration_finished,   ///< iteration / total_iterations / loss are valid
    artifact_written,     ///< message = file path
    experiment_finished,  ///< message = experiment name
  };

  phase kind = phase::experiment_started;
  std::string experiment;           ///< display name of the spec being executed
  std::string message;              ///< phase-dependent payload (see `phase`)
  std::size_t iteration = 0;        ///< iteration_finished only
  std::size_t total_iterations = 0; ///< iteration_finished only
  double loss = 0.0;                ///< iteration_finished only
};

/// Receiver of session progress. Implementations must tolerate being called
/// once per optimizer iteration (keep handlers cheap). `on_event` may throw;
/// the exception unwinds the experiment and surfaces to the session caller
/// (the runtime scheduler uses this for cooperative cancellation).
class observer {
 public:
  virtual ~observer() = default;
  virtual void on_event(const progress_event& event) = 0;
};

/// Default observer: lifecycle events at info level, per-iteration records
/// at debug level, all through common/log. Stateless, so concurrent calls
/// from several scheduler workers are safe; each event is rendered into a
/// single string before the serialized `log_line` write, so lines from
/// concurrent jobs never interleave mid-line. The optional `prefix` tags
/// every line (the scheduler uses "shard/worker/job" tags to keep
/// interleaved campaign output attributable).
class log_observer : public observer {
 public:
  log_observer() = default;
  explicit log_observer(std::string prefix) : prefix_(std::move(prefix)) {}

  void on_event(const progress_event& event) override;

 private:
  const std::string prefix_;
};

}  // namespace boson::api
