#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fab/eole.h"
#include "fab/etch.h"
#include "fab/litho.h"
#include "fab/morphology.h"
#include "fab/temperature.h"

namespace boson::fab {
namespace {

/// Small, fast lithography settings for tests (coarse pixels, few kernels).
litho_settings test_litho(double pixel = 0.05) {
  litho_settings s;
  s.pixel = pixel;
  s.kernel_half = 6;
  s.max_kernels = 6;
  s.na = 1.0;
  s.sigma = 0.35;
  return s;
}

// ---------------------------------------------------------- temperature ----

TEST(temperature, nominal_silicon_permittivity) {
  EXPECT_NEAR(eps_si(300.0), 3.48 * 3.48, 1e-12);
}

TEST(temperature, monotone_increasing_with_t) {
  EXPECT_GT(eps_si(340.0), eps_si(300.0));
  EXPECT_LT(eps_si(260.0), eps_si(300.0));
}

TEST(temperature, derivative_matches_fd) {
  for (const double t : {270.0, 300.0, 335.0}) {
    const double h = 1e-3;
    const double fd = (eps_si(t + h) - eps_si(t - h)) / (2 * h);
    EXPECT_NEAR(eps_si_dt(t), fd, 1e-9);
  }
}

// ---------------------------------------------------------------- litho ----

TEST(litho, standard_corners_are_nominal_min_max) {
  const auto corners = standard_litho_corners(0.08);
  ASSERT_EQ(corners.size(), 3u);
  EXPECT_DOUBLE_EQ(corners[0].defocus, 0.0);
  EXPECT_DOUBLE_EQ(corners[0].dose, 1.0);
  EXPECT_LT(corners[1].dose, 1.0);
  EXPECT_GT(corners[2].dose, 1.0);
  EXPECT_GT(corners[1].defocus, 0.0);
}

TEST(litho, open_frame_images_to_dose) {
  const auto s = test_litho();
  hopkins_litho model(s, {0.0, 1.0}, 40, 40);
  array2d<double> mask(40, 40, 1.0);
  const auto fwd = model.forward(mask);
  // Away from the boundary roll-off the aerial image is ~1.
  for (std::size_t ix = 15; ix < 25; ++ix)
    for (std::size_t iy = 15; iy < 25; ++iy) EXPECT_NEAR(fwd.aerial(ix, iy), 1.0, 0.03);
}

TEST(litho, dark_frame_images_to_zero) {
  const auto s = test_litho();
  hopkins_litho model(s, {0.0, 1.0}, 32, 32);
  array2d<double> mask(32, 32, 0.0);
  const auto fwd = model.forward(mask);
  for (const double v : fwd.aerial) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(litho, dose_scales_intensity) {
  const auto s = test_litho();
  hopkins_litho nominal(s, {0.0, 1.0}, 32, 32);
  hopkins_litho overdose(s, {0.0, 1.1}, 32, 32);
  array2d<double> mask(32, 32, 0.0);
  for (std::size_t ix = 10; ix < 22; ++ix)
    for (std::size_t iy = 10; iy < 22; ++iy) mask(ix, iy) = 1.0;
  const auto a = nominal.forward(mask);
  const auto b = overdose.forward(mask);
  EXPECT_NEAR(b.aerial(16, 16) / a.aerial(16, 16), 1.1, 1e-6);
}

TEST(litho, single_pixel_feature_is_wiped_out) {
  // The core fabricability mechanism: features below the diffraction limit
  // cannot print. A 1-pixel (50 nm) hole must stay above the etch threshold
  // (it never opens), while a 5x5-pixel (250 nm) hole prints.
  const auto s = test_litho();
  hopkins_litho model(s, {0.0, 1.0}, 32, 32);
  array2d<double> pinhole(32, 32, 1.0);
  pinhole(16, 16) = 0.0;
  array2d<double> big_hole(32, 32, 1.0);
  for (std::size_t ix = 14; ix < 19; ++ix)
    for (std::size_t iy = 14; iy < 19; ++iy) big_hole(ix, iy) = 0.0;
  const auto a = model.forward(pinhole);
  const auto b = model.forward(big_hole);
  EXPECT_GT(a.aerial(16, 16), 0.55);  // sub-resolution hole does not open
  EXPECT_LT(b.aerial(16, 16), 0.35);  // resolvable hole does
}

TEST(litho, large_feature_survives) {
  const auto s = test_litho();
  hopkins_litho model(s, {0.0, 1.0}, 48, 48);
  array2d<double> mask(48, 48, 0.0);
  for (std::size_t ix = 12; ix < 36; ++ix)
    for (std::size_t iy = 12; iy < 36; ++iy) mask(ix, iy) = 1.0;  // 1.2 um block
  const auto fwd = model.forward(mask);
  EXPECT_GT(fwd.aerial(24, 24), 0.9);
  EXPECT_LT(fwd.aerial(4, 4), 0.1);
}

TEST(litho, defocus_degrades_small_feature_contrast) {
  // Through focus, a near-resolution feature loses peak intensity — the
  // mechanism behind the paper's l_min/l_max lithography corners.
  const auto s = test_litho();
  hopkins_litho focused(s, {0.0, 1.0}, 40, 40);
  hopkins_litho defocused(s, {0.3, 1.0}, 40, 40);
  array2d<double> mask(40, 40, 0.0);
  for (std::size_t ix = 18; ix < 22; ++ix)
    for (std::size_t iy = 18; iy < 22; ++iy) mask(ix, iy) = 1.0;  // 200 nm box
  const auto a = focused.forward(mask);
  const auto b = defocused.forward(mask);
  EXPECT_LT(b.aerial(20, 20), a.aerial(20, 20));
  // The two corner images differ measurably overall.
  double diff = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < a.aerial.size(); ++i) {
    diff += std::abs(a.aerial.data()[i] - b.aerial.data()[i]);
    norm += std::abs(a.aerial.data()[i]);
  }
  EXPECT_GT(diff / norm, 0.01);
}

TEST(litho, kernel_energy_concentrated_in_first_kernel) {
  const auto s = test_litho();
  hopkins_litho model(s, {0.0, 1.0}, 32, 32);
  const auto& w = model.kernel_weights();
  ASSERT_GE(w.size(), 2u);
  EXPECT_GT(w[0], w[1]);  // dominant coherent kernel first
}

TEST(litho, backward_matches_fd) {
  const auto s = test_litho();
  hopkins_litho model(s, {0.05, 1.0}, 20, 20);
  rng r(12);
  array2d<double> mask(20, 20);
  for (auto& v : mask) v = r.uniform(0, 1);
  array2d<double> d_aerial(20, 20);
  for (auto& v : d_aerial) v = r.uniform(-1, 1);

  const auto fwd = model.forward(mask);
  const auto grad = model.backward(fwd, d_aerial);

  auto loss = [&](const array2d<double>& m) {
    const auto f = model.forward(m);
    double acc = 0.0;
    for (std::size_t i = 0; i < f.aerial.size(); ++i)
      acc += d_aerial.data()[i] * f.aerial.data()[i];
    return acc;
  };
  const double h = 1e-6;
  for (const auto& [ix, iy] : {std::pair<std::size_t, std::size_t>{10, 10},
                              std::pair<std::size_t, std::size_t>{3, 17},
                              std::pair<std::size_t, std::size_t>{15, 5}}) {
    array2d<double> mp = mask, mm = mask;
    mp(ix, iy) += h;
    mm(ix, iy) -= h;
    const double fd = (loss(mp) - loss(mm)) / (2 * h);
    EXPECT_NEAR(grad(ix, iy), fd, 1e-5 * (1.0 + std::abs(fd)));
  }
}

TEST(litho, rejects_pupil_beyond_nyquist) {
  litho_settings s = test_litho(0.2);  // huge pixels: Nyquist 2.5 1/um < pupil
  s.na = 1.2;
  EXPECT_THROW(hopkins_litho(s, {0.0, 1.0}, 16, 16), numeric_error);
}

// ----------------------------------------------------------------- etch ----

TEST(etch, hard_mode_binarizes) {
  etch_model etch(30.0, etch_mode::hard);
  array2d<double> litho_out(4, 4, 0.3);
  litho_out(1, 1) = 0.8;
  array2d<double> eta(4, 4, 0.5);
  const auto p = etch.forward(litho_out, eta);
  EXPECT_DOUBLE_EQ(p(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(p(0, 0), 0.0);
}

TEST(etch, ste_forward_equals_hard_forward) {
  etch_model ste(30.0, etch_mode::ste);
  etch_model hard(30.0, etch_mode::hard);
  rng r(9);
  array2d<double> x(6, 6), eta(6, 6, 0.5);
  for (auto& v : x) v = r.uniform(0, 1);
  const auto a = ste.forward(x, eta);
  const auto b = hard.forward(x, eta);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
}

TEST(etch, soft_mode_gradient_matches_fd) {
  etch_model etch(18.0, etch_mode::soft);
  rng r(10);
  array2d<double> x(5, 5), eta(5, 5), d_p(5, 5);
  for (auto& v : x) v = r.uniform(0, 1);
  for (auto& v : eta) v = r.uniform(0.4, 0.6);
  for (auto& v : d_p) v = r.uniform(-1, 1);

  array2d<double> dx(5, 5, 0.0), de(5, 5, 0.0);
  etch.backward(x, eta, d_p, dx, de);

  auto loss = [&](const array2d<double>& xx, const array2d<double>& ee) {
    const auto p = etch.forward(xx, ee);
    double acc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) acc += d_p.data()[i] * p.data()[i];
    return acc;
  };
  const double h = 1e-6;
  for (std::size_t i : {0ul, 7ul, 13ul, 24ul}) {
    array2d<double> xp = x, xm = x;
    xp.data()[i] += h;
    xm.data()[i] -= h;
    EXPECT_NEAR(dx.data()[i], (loss(xp, eta) - loss(xm, eta)) / (2 * h), 1e-5);
    array2d<double> ep = eta, em = eta;
    ep.data()[i] += h;
    em.data()[i] -= h;
    EXPECT_NEAR(de.data()[i], (loss(x, ep) - loss(x, em)) / (2 * h), 1e-5);
  }
}

TEST(etch, eta_shift_shrinks_or_grows_pattern) {
  // Under-etch (higher threshold) keeps less material.
  etch_model etch(30.0, etch_mode::hard);
  array2d<double> x(10, 10);
  for (std::size_t ix = 0; ix < 10; ++ix)
    for (std::size_t iy = 0; iy < 10; ++iy)
      x(ix, iy) = static_cast<double>(ix) / 9.0;  // ramp
  array2d<double> eta_lo(10, 10, 0.4), eta_hi(10, 10, 0.6);
  const double area_lo = total(etch.forward(x, eta_lo));
  const double area_hi = total(etch.forward(x, eta_hi));
  EXPECT_GT(area_lo, area_hi);
}

TEST(etch, hard_mode_has_zero_gradient) {
  etch_model etch(30.0, etch_mode::hard);
  array2d<double> x(3, 3, 0.7), eta(3, 3, 0.5), d_p(3, 3, 1.0);
  array2d<double> dx, de;
  etch.backward(x, eta, d_p, dx, de);
  for (const double v : dx) EXPECT_DOUBLE_EQ(v, 0.0);
  for (const double v : de) EXPECT_DOUBLE_EQ(v, 0.0);
}

// ----------------------------------------------------------------- eole ----

eole_settings test_eole() {
  eole_settings s;
  s.corr_length = 0.3;
  s.sigma = 0.05;
  s.anchors_x = 5;
  s.anchors_y = 5;
  s.num_terms = 6;
  return s;
}

TEST(eole, zero_coefficients_give_nominal_threshold) {
  eole_field field(20, 20, 0.05, 0.05, test_eole());
  const auto eta = field.field(dvec(field.num_terms(), 0.0));
  for (const double v : eta) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(eole, global_shift_adds_uniformly) {
  eole_field field(16, 16, 0.05, 0.05, test_eole());
  const auto eta = field.field(dvec(field.num_terms(), 0.0), 0.03);
  for (const double v : eta) EXPECT_DOUBLE_EQ(v, 0.53);
}

TEST(eole, field_is_linear_in_xi) {
  eole_field field(12, 12, 0.05, 0.05, test_eole());
  rng r(3);
  dvec xi1 = r.normal_vector(field.num_terms());
  dvec xi2 = r.normal_vector(field.num_terms());
  const auto f1 = field.field(xi1);
  const auto f2 = field.field(xi2);
  dvec sum(xi1.size());
  for (std::size_t i = 0; i < sum.size(); ++i) sum[i] = xi1[i] + xi2[i];
  const auto fs = field.field(sum);
  for (std::size_t i = 0; i < fs.size(); ++i)
    EXPECT_NEAR(fs.data()[i] - 0.5, (f1.data()[i] - 0.5) + (f2.data()[i] - 0.5), 1e-12);
}

TEST(eole, pointwise_variance_bounded_by_sigma) {
  // EOLE truncation only *underestimates* the variance: sum_m B_m(x)^2 <=
  // sigma^2, approaching it with enough terms.
  auto s = test_eole();
  s.num_terms = 25;
  eole_field field(24, 24, 0.05, 0.05, s);
  double worst = 0.0, best = 0.0;
  for (std::size_t ix = 4; ix < 20; ++ix) {
    for (std::size_t iy = 4; iy < 20; ++iy) {
      double var = 0.0;
      for (std::size_t m = 0; m < field.num_terms(); ++m) {
        const double b = field.basis(m)(ix, iy);
        var += b * b;
      }
      worst = std::max(worst, var);
      best = std::max(best, var);
      EXPECT_LE(var, s.sigma * s.sigma * 1.02);
    }
  }
  EXPECT_GT(best, 0.5 * s.sigma * s.sigma);  // captures most of the energy
}

TEST(eole, field_is_spatially_correlated) {
  eole_field field(30, 30, 0.05, 0.05, test_eole());
  rng r(17);
  // Empirical correlation between neighbors vs. distant cells over draws.
  double c_near = 0.0, c_far = 0.0;
  const int draws = 200;
  for (int d = 0; d < draws; ++d) {
    const auto eta = field.field(r.normal_vector(field.num_terms()));
    const double a = eta(15, 15) - 0.5;
    c_near += a * (eta(16, 15) - 0.5);
    c_far += a * (eta(2, 28) - 0.5);
  }
  EXPECT_GT(c_near / draws, 4.0 * std::abs(c_far / draws));
}

TEST(eole, project_gradient_matches_fd) {
  eole_field field(10, 10, 0.05, 0.05, test_eole());
  rng r(23);
  array2d<double> d_eta(10, 10);
  for (auto& v : d_eta) v = r.uniform(-1, 1);
  const dvec g = field.project_gradient(d_eta);

  auto loss = [&](const dvec& xi) {
    const auto eta = field.field(xi);
    double acc = 0.0;
    for (std::size_t i = 0; i < eta.size(); ++i) acc += d_eta.data()[i] * eta.data()[i];
    return acc;
  };
  dvec xi(field.num_terms(), 0.0);
  const double h = 1e-6;
  for (std::size_t m = 0; m < field.num_terms(); ++m) {
    dvec xp = xi, xm = xi;
    xp[m] += h;
    xm[m] -= h;
    EXPECT_NEAR(g[m], (loss(xp) - loss(xm)) / (2 * h), 1e-7 * (1.0 + std::abs(g[m])));
  }
}

TEST(eole, basis_index_validated) {
  eole_field field(8, 8, 0.05, 0.05, test_eole());
  EXPECT_THROW(field.basis(field.num_terms()), bad_argument);
  EXPECT_THROW(field.field(dvec(field.num_terms() + 1)), bad_argument);
}

// ----------------------------------------------------------- morphology ----

namespace {

array2d<double> centered_square(std::size_t n, std::size_t half) {
  array2d<double> a(n, n, 0.0);
  for (std::size_t ix = n / 2 - half; ix < n / 2 + half; ++ix)
    for (std::size_t iy = n / 2 - half; iy < n / 2 + half; ++iy) a(ix, iy) = 1.0;
  return a;
}

}  // namespace

TEST(morphology, hard_dilation_grows_and_erosion_shrinks) {
  const auto square = centered_square(20, 4);
  const double area = total(square);
  EXPECT_GT(total(dilate_hard(square, 1.5)), area);
  EXPECT_LT(total(erode_hard(square, 1.5)), area);
}

TEST(morphology, duality_of_dilation_and_erosion) {
  // erode(x) == 1 - dilate(1 - x), for the hard operators.
  rng r(31);
  array2d<double> x(14, 11);
  for (auto& v : x) v = r.uniform(0, 1) > 0.5 ? 1.0 : 0.0;
  array2d<double> inv(14, 11);
  for (std::size_t i = 0; i < x.size(); ++i) inv.data()[i] = 1.0 - x.data()[i];
  const auto lhs = erode_hard(x, 1.2);
  const auto rhs = dilate_hard(inv, 1.2);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(lhs.data()[i], 1.0 - rhs.data()[i], 1e-12);
}

TEST(morphology, erosion_removes_small_features_entirely) {
  const auto dot = centered_square(16, 1);  // 2x2 block
  const auto eroded = erode_hard(dot, 1.5);
  EXPECT_NEAR(total(eroded), 0.0, 1e-12);
}

class soft_morphology_radii : public ::testing::TestWithParam<double> {};

TEST_P(soft_morphology_radii, approximates_hard_operators_on_binary_input) {
  const double radius = GetParam();
  const auto square = centered_square(18, 4);
  const soft_morphology morph(radius, 24.0);  // high power: close to hard
  const auto soft_d = morph.forward(square, true);
  const auto hard_d = dilate_hard(square, radius);
  const auto soft_e = morph.forward(square, false);
  const auto hard_e = erode_hard(square, radius);
  double err_d = 0.0, err_e = 0.0;
  for (std::size_t i = 0; i < square.size(); ++i) {
    err_d = std::max(err_d, std::abs(soft_d.data()[i] - hard_d.data()[i]));
    err_e = std::max(err_e, std::abs(soft_e.data()[i] - hard_e.data()[i]));
  }
  EXPECT_LT(err_d, 0.25);
  EXPECT_LT(err_e, 0.25);
}

INSTANTIATE_TEST_SUITE_P(radii, soft_morphology_radii, ::testing::Values(1.0, 1.5, 2.5));

TEST(morphology, soft_backward_matches_fd) {
  rng r(41);
  array2d<double> x(9, 9);
  for (auto& v : x) v = r.uniform(0.05, 0.95);
  array2d<double> d_out(9, 9);
  for (auto& v : d_out) v = r.uniform(-1, 1);
  const soft_morphology morph(1.4, 8.0);

  for (const bool dilate : {true, false}) {
    array2d<double> grad(9, 9, 0.0);
    morph.backward(x, d_out, dilate, grad);
    auto loss = [&](const array2d<double>& in) {
      const auto out = morph.forward(in, dilate);
      double acc = 0.0;
      for (std::size_t i = 0; i < out.size(); ++i) acc += d_out.data()[i] * out.data()[i];
      return acc;
    };
    const double h = 1e-6;
    for (const std::size_t i : {10ul, 40ul, 60ul}) {
      array2d<double> xp = x, xm = x;
      xp.data()[i] += h;
      xm.data()[i] -= h;
      const double fd = (loss(xp) - loss(xm)) / (2 * h);
      EXPECT_NEAR(grad.data()[i], fd, 1e-5 * (1.0 + std::abs(fd))) << (dilate ? "dilate" : "erode");
    }
  }
}

TEST(morphology, validates_parameters) {
  array2d<double> x(4, 4, 0.5);
  EXPECT_THROW(dilate_hard(x, 0.0), bad_argument);
  EXPECT_THROW(soft_morphology(1.0, 1.0), bad_argument);
}

}  // namespace
}  // namespace boson::fab
