#pragma once

#include <string>
#include <vector>

namespace boson::opt {

/// One auxiliary constraint F_i <= C_i (or F_i >= C_i), relaxed into the
/// objective as w_i * [F_i - C_i]_+ — the paper's dense-objective landscape
/// reshaping (Eq. 2). Metrics are referenced by name; the design problem maps
/// names to monitor-derived values.
struct penalty_spec {
  std::string metric;   ///< e.g. "fwd_transmission", "reflection"
  double weight = 1.0;
  double bound = 0.0;
  bool upper = true;    ///< true: penalize metric > bound; false: metric < bound

  /// Loss contribution at `value`.
  double value_at(double value) const {
    const double violation = upper ? value - bound : bound - value;
    return violation > 0.0 ? weight * violation : 0.0;
  }

  /// d(loss)/d(metric) at `value`.
  double slope_at(double value) const {
    const double violation = upper ? value - bound : bound - value;
    if (violation <= 0.0) return 0.0;
    return upper ? weight : -weight;
  }
};

using penalty_set = std::vector<penalty_spec>;

}  // namespace boson::opt
