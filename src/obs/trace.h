/// \file trace.h
/// Span-based tracing: an RAII `span` measures one named region, records its
/// parent span (per-thread linkage), and lands in whichever
/// `trace_collector` is active for the recording thread. Collectors are
/// thread-safe buffers with two export formats — Chrome `trace_event` JSON
/// (load the file in chrome://tracing or Perfetto) and NDJSON (one event per
/// line, greppable).
///
/// Sink selection: a thread-local collector (installed by
/// `scoped_trace_sink`, e.g. the scheduler's per-job trace buffer) takes
/// precedence over the process-global collector (`set_global_trace`, e.g.
/// `boson_cli --trace <file>`). With neither installed a span is two loads
/// and no allocation — cheap enough to leave compiled into solver paths.
///
/// Spans created on a *different* thread than the one that installed a
/// scoped sink (a `parallel_for` fan-out inside a traced job) fall through
/// to the global collector; per-job traces therefore cover the job's own
/// thread, which is where the scheduler runs the whole session.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace boson::obs {

/// One completed span. Times are microseconds on the process-wide steady
/// timebase (`trace_now_us`); `tid` is `boson::thread_ordinal()`.
struct trace_event {
  std::string name;
  std::string category;
  std::uint64_t id = 0;      ///< unique per process, never 0
  std::uint64_t parent = 0;  ///< enclosing span on the same thread; 0 = root
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Microseconds since process start (steady clock) — the span timebase.
std::int64_t trace_now_us();

/// Thread-safe span buffer with Chrome/NDJSON export.
class trace_collector {
 public:
  void record(trace_event event);

  std::vector<trace_event> events() const;
  std::size_t size() const;
  void clear();

  /// Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...},...]}. Span
  /// ids/parents ride in each event's "args" so the linkage survives the
  /// format.
  std::string to_chrome_json() const;

  /// One JSON object per line: name, cat, id, parent, ts_us, dur_us, tid,
  /// args. Every line parses standalone.
  std::string to_ndjson() const;

  /// Write an export to `path` (throws `io_error` on failure).
  void write_chrome_json(const std::string& path) const;
  void write_ndjson(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<trace_event> events_;
};

/// Install / read the process-global collector (nullptr disables). The
/// caller keeps ownership; uninstall before destroying the collector.
void set_global_trace(trace_collector* collector);
trace_collector* global_trace();

/// True when a span created on this thread right now would be recorded.
bool tracing_active();

/// Install a thread-local collector for a scope (the per-job trace buffer):
/// spans on this thread go to `collector` until destruction, and parent
/// linkage restarts at a fresh root. Nestable; restores the previous sink.
class scoped_trace_sink {
 public:
  explicit scoped_trace_sink(trace_collector* collector);
  ~scoped_trace_sink();
  scoped_trace_sink(const scoped_trace_sink&) = delete;
  scoped_trace_sink& operator=(const scoped_trace_sink&) = delete;

 private:
  trace_collector* previous_;
  std::uint64_t previous_parent_;
};

/// RAII span: measures construction-to-destruction, parented under the
/// enclosing span of the same thread. No-op (two loads) when no collector
/// is active at construction.
class span {
 public:
  explicit span(std::string name, std::string category = "");
  ~span();
  span(const span&) = delete;
  span& operator=(const span&) = delete;

  /// Attach a key/value to the span (ignored when the span is inactive).
  void arg(const std::string& key, std::string value);

  bool active() const { return sink_ != nullptr; }

 private:
  trace_collector* sink_ = nullptr;
  trace_event event_;
};

}  // namespace boson::obs
