#include "common/text.h"

#include <algorithm>
#include <numeric>

namespace boson {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Single-row dynamic program: row[j] holds the distance between a's first
  // i characters and b's first j characters.
  std::vector<std::size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), std::size_t{0});
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

std::string closest_match(const std::string& name,
                          const std::vector<std::string>& candidates,
                          std::size_t max_distance) {
  std::string best;
  std::size_t best_distance = max_distance + 1;
  for (const std::string& candidate : candidates) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  // A suggestion that rewrites more than half the typed name is noise, not a
  // typo fix.
  if (best_distance * 2 > std::max<std::size_t>(1, name.size())) return "";
  return best;
}

std::string did_you_mean(const std::string& name,
                         const std::vector<std::string>& candidates) {
  const std::string suggestion = closest_match(name, candidates);
  if (suggestion.empty()) return "";
  return "; did you mean '" + suggestion + "'?";
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace boson
