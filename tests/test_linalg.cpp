#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/dense.h"
#include "linalg/eig_sym.h"
#include "linalg/vec.h"

namespace boson::la {
namespace {

// ------------------------------------------------------------------ vec ----

TEST(vec, conjugated_dot) {
  const cvec a{{1, 1}, {0, 2}};
  const cvec b{{2, 0}, {1, 0}};
  const cplx d = dot(a, b);  // conj(a) . b
  EXPECT_DOUBLE_EQ(d.real(), 2.0);
  EXPECT_DOUBLE_EQ(d.imag(), -4.0);
}

TEST(vec, unconjugated_dot) {
  const cvec a{{1, 1}, {0, 2}};
  const cvec b{{2, 0}, {1, 0}};
  const cplx d = dotu(a, b);
  EXPECT_DOUBLE_EQ(d.real(), 2.0);
  EXPECT_DOUBLE_EQ(d.imag(), 4.0);
}

TEST(vec, nrm2_matches_manual) {
  const cvec a{{3, 4}, {0, 0}};
  EXPECT_DOUBLE_EQ(nrm2(a), 5.0);
  const dvec b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(nrm2(b), 5.0);
}

TEST(vec, axpy_and_scale) {
  dvec y{1.0, 2.0};
  axpy(2.0, dvec{10.0, 20.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 21.0);
  EXPECT_DOUBLE_EQ(y[1], 42.0);
  scale(y, 0.5);
  EXPECT_DOUBLE_EQ(y[0], 10.5);
}

TEST(vec, max_abs) {
  EXPECT_DOUBLE_EQ(max_abs(dvec{-3.0, 2.0}), 3.0);
  EXPECT_DOUBLE_EQ(max_abs(cvec{{0, -4}, {1, 0}}), 4.0);
}

TEST(vec, size_mismatch_throws) {
  EXPECT_THROW(dot(dvec{1.0}, dvec{1.0, 2.0}), bad_argument);
}

// ---------------------------------------------------------------- dense ----

TEST(dense, identity_and_matvec) {
  const auto eye = dmat::identity(3);
  const std::vector<double> x{1.0, 2.0, 3.0};
  const auto y = eye.matvec(x);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(dense, matmul_small_known) {
  dmat a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const auto sq = a.matmul(a);
  EXPECT_DOUBLE_EQ(sq(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(sq(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(sq(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(sq(1, 1), 22.0);
}

TEST(dense, transpose) {
  dmat a(2, 3);
  a(0, 2) = 5.0;
  const auto t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
}

class lu_solve_sizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(lu_solve_sizes, real_random_system_recovers_solution) {
  const std::size_t n = GetParam();
  rng r(100 + n);
  dmat a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = r.uniform(-1, 1);
    a(i, i) += static_cast<double>(n);  // diagonally dominant
  }
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = r.uniform(-2, 2);
  const auto b = a.matvec(x_true);
  const auto x = lu_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST_P(lu_solve_sizes, complex_random_system_recovers_solution) {
  const std::size_t n = GetParam();
  rng r(200 + n);
  cmat a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
    a(i, i) += cplx(static_cast<double>(n), 0.0);
  }
  cvec x_true(n);
  for (auto& v : x_true) v = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  const auto b = a.matvec(x_true);
  const auto x = lu_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(sizes, lu_solve_sizes, ::testing::Values(1, 2, 5, 16, 40));

TEST(dense, lu_solve_singular_throws) {
  dmat a(2, 2, 0.0);
  a(0, 0) = 1.0;  // second row all zero
  EXPECT_THROW(lu_solve(a, std::vector<double>{1.0, 1.0}), numeric_error);
}

// ------------------------------------------------------------- eigen ------

/// ||A v - lambda v|| for every eigenpair, plus orthonormality of V.
template <class T>
void expect_valid_eigenpairs(const dense_matrix<T>& a, const eig_result<T>& e, double tol) {
  const std::size_t n = a.rows();
  ASSERT_EQ(e.values.size(), n);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<T> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = e.vectors(i, j);
    const auto av = a.matvec(v);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(std::abs(av[i] - e.values[j] * v[i]), 0.0, tol) << "pair " << j;
  }
  // Orthonormal columns.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = j; k < n; ++k) {
      cplx acc{};
      for (std::size_t i = 0; i < n; ++i)
        acc += std::conj(cplx(e.vectors(i, j))) * cplx(e.vectors(i, k));
      EXPECT_NEAR(std::abs(acc - (j == k ? 1.0 : 0.0)), 0.0, tol);
    }
  }
}

dmat random_symmetric(std::size_t n, std::uint64_t seed) {
  rng r(seed);
  dmat a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = r.uniform(-1, 1);
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

class sym_eig_sizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(sym_eig_sizes, jacobi_eigenpairs_valid) {
  const auto a = random_symmetric(GetParam(), 31 + GetParam());
  expect_valid_eigenpairs(a, jacobi_eig(a), 1e-8);
}

TEST_P(sym_eig_sizes, householder_tql2_eigenpairs_valid) {
  const auto a = random_symmetric(GetParam(), 57 + GetParam());
  expect_valid_eigenpairs(a, sym_eig(a), 1e-8);
}

TEST_P(sym_eig_sizes, jacobi_and_sym_eig_agree_on_spectrum) {
  const auto a = random_symmetric(GetParam(), 91 + GetParam());
  const auto ja = jacobi_eig(a);
  const auto hh = sym_eig(a);
  for (std::size_t i = 0; i < a.rows(); ++i) EXPECT_NEAR(ja.values[i], hh.values[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(sizes, sym_eig_sizes, ::testing::Values(2, 3, 8, 20, 50));

TEST(eigen, values_sorted_ascending) {
  const auto a = random_symmetric(12, 7);
  const auto e = sym_eig(a);
  for (std::size_t i = 1; i < e.values.size(); ++i) EXPECT_LE(e.values[i - 1], e.values[i]);
}

TEST(eigen, diagonal_matrix_spectrum_exact) {
  dmat a(4, 4, 0.0);
  a(0, 0) = -1.0;
  a(1, 1) = 2.0;
  a(2, 2) = 2.0;  // repeated eigenvalue
  a(3, 3) = 7.0;
  const auto e = sym_eig(a);
  EXPECT_NEAR(e.values[0], -1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], 2.0, 1e-12);
  EXPECT_NEAR(e.values[3], 7.0, 1e-12);
}

TEST(eigen, tridiag_known_laplacian_spectrum) {
  // -u'' on a path graph: eigenvalues 2 - 2 cos(k pi / (n+1)).
  const std::size_t n = 16;
  dvec diag(n, 2.0);
  dvec sub(n, -1.0);
  const auto e = tridiag_eig(diag, sub);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected =
        2.0 - 2.0 * std::cos(static_cast<double>(k + 1) * pi / static_cast<double>(n + 1));
    EXPECT_NEAR(e.values[k], expected, 1e-10);
  }
}

TEST(eigen, tridiag_eigenvectors_valid) {
  const std::size_t n = 24;
  rng r(3);
  dvec diag(n), sub(n);
  for (auto& v : diag) v = r.uniform(-1, 1);
  for (auto& v : sub) v = r.uniform(-1, 1);
  sub[0] = 0.0;
  // Build the dense equivalent to verify pairs.
  dmat a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) = diag[i];
  for (std::size_t i = 1; i < n; ++i) {
    a(i, i - 1) = sub[i];
    a(i - 1, i) = sub[i];
  }
  expect_valid_eigenpairs(a, tridiag_eig(diag, sub), 1e-8);
}

cmat random_hermitian(std::size_t n, std::uint64_t seed) {
  rng r(seed);
  cmat a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const cplx v(r.uniform(-1, 1), r.uniform(-1, 1));
      a(i, j) = v;
      a(j, i) = std::conj(v);
    }
    a(i, i) = cplx(r.uniform(-1, 1), 0.0);
  }
  return a;
}

class hermitian_sizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(hermitian_sizes, eigenpairs_valid) {
  const auto a = random_hermitian(GetParam(), 11 + GetParam());
  expect_valid_eigenpairs(a, hermitian_eig(a), 1e-8);
}

TEST_P(hermitian_sizes, reconstruction_from_eigenpairs) {
  const auto a = random_hermitian(GetParam(), 77 + GetParam());
  const auto e = hermitian_eig(a);
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cplx acc{};
      for (std::size_t k = 0; k < n; ++k)
        acc += e.values[k] * e.vectors(i, k) * std::conj(e.vectors(j, k));
      EXPECT_NEAR(std::abs(acc - a(i, j)), 0.0, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(sizes, hermitian_sizes, ::testing::Values(2, 3, 6, 15, 30));

TEST(eigen, hermitian_rank_one_projector) {
  // A = v v^H has spectrum {|v|^2, 0, ..., 0}.
  const std::size_t n = 5;
  cvec v(n);
  rng r(19);
  for (auto& x : v) x = cplx(r.uniform(-1, 1), r.uniform(-1, 1));
  double norm2 = 0.0;
  for (const auto& x : v) norm2 += std::norm(x);
  cmat a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = v[i] * std::conj(v[j]);
  const auto e = hermitian_eig(a);
  EXPECT_NEAR(e.values.back(), norm2, 1e-9);
  for (std::size_t k = 0; k + 1 < n; ++k) EXPECT_NEAR(e.values[k], 0.0, 1e-9);
}

}  // namespace
}  // namespace boson::la
