#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "optim/optimizer.h"
#include "optim/penalty.h"
#include "optim/schedule.h"
#include "robust/sampler.h"

namespace boson {
namespace {

// ----------------------------------------------------------- optimizers ----

class optimizer_kinds : public ::testing::TestWithParam<bool> {};

TEST_P(optimizer_kinds, minimizes_separable_quadratic) {
  const bool use_adam = GetParam();
  std::unique_ptr<opt::optimizer> o;
  if (use_adam) {
    o = std::make_unique<opt::adam>(0.1);
  } else {
    o = std::make_unique<opt::sgd_momentum>(0.05, 0.8);
  }
  // f(x) = sum c_i (x_i - t_i)^2 with assorted curvatures.
  const dvec c{1.0, 5.0, 0.2, 2.0};
  const dvec t{1.0, -2.0, 3.0, 0.5};
  dvec x(4, 0.0);
  for (int it = 0; it < 400; ++it) {
    dvec g(4);
    for (int i = 0; i < 4; ++i) g[i] = 2.0 * c[i] * (x[i] - t[i]);
    o->step(x, g);
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x[i], t[i], 0.05) << i;
}

TEST_P(optimizer_kinds, reset_clears_momentum) {
  const bool use_adam = GetParam();
  std::unique_ptr<opt::optimizer> o;
  if (use_adam) {
    o = std::make_unique<opt::adam>(0.5);
  } else {
    o = std::make_unique<opt::sgd_momentum>(0.5, 0.9);
  }
  dvec x{0.0};
  o->step(x, dvec{1.0});
  const double first_step = x[0];
  o->reset();
  dvec y{0.0};
  o->step(y, dvec{1.0});
  EXPECT_DOUBLE_EQ(y[0], first_step);
}

INSTANTIATE_TEST_SUITE_P(kinds, optimizer_kinds, ::testing::Bool());

TEST(adam, handles_wildly_scaled_gradients) {
  // Adam's per-parameter normalization: both coordinates must make progress
  // even when gradient magnitudes differ by 6 orders.
  opt::adam o(0.05);
  dvec x{0.0, 0.0};
  for (int it = 0; it < 200; ++it) {
    dvec g{2e-6 * (x[0] - 1.0), 2e+2 * (x[1] - 1.0)};
    o.step(x, g);
  }
  EXPECT_NEAR(x[0], 1.0, 0.1);
  EXPECT_NEAR(x[1], 1.0, 0.1);
}

TEST(adam, rejects_bad_hyperparameters) {
  EXPECT_THROW(opt::adam(-0.1), bad_argument);
  EXPECT_THROW(opt::adam(0.1, 1.0), bad_argument);
  EXPECT_THROW(opt::sgd_momentum(0.1, 1.0), bad_argument);
}

TEST(adam, size_mismatch_throws) {
  opt::adam o(0.1);
  dvec x(3, 0.0);
  EXPECT_THROW(o.step(x, dvec(4, 0.0)), bad_argument);
}

// ------------------------------------------------------------- schedule ----

TEST(schedule, ramps_linearly_between_endpoints) {
  opt::linear_schedule s(2.0, 10.0, 10, 30);
  EXPECT_DOUBLE_EQ(s.at(0), 2.0);
  EXPECT_DOUBLE_EQ(s.at(10), 2.0);
  EXPECT_DOUBLE_EQ(s.at(20), 6.0);
  EXPECT_DOUBLE_EQ(s.at(30), 10.0);
  EXPECT_DOUBLE_EQ(s.at(100), 10.0);
}

TEST(schedule, constant_schedule) {
  opt::linear_schedule s(3.5);
  EXPECT_DOUBLE_EQ(s.at(0), 3.5);
  EXPECT_DOUBLE_EQ(s.at(1000), 3.5);
}

TEST(schedule, invalid_ramp_throws) {
  EXPECT_THROW(opt::linear_schedule(0.0, 1.0, 5, 2), bad_argument);
}

// -------------------------------------------------------------- penalty ----

TEST(penalty, upper_bound_activates_above) {
  opt::penalty_spec p{"reflection", 2.0, 0.1, true};
  EXPECT_DOUBLE_EQ(p.value_at(0.05), 0.0);
  EXPECT_DOUBLE_EQ(p.slope_at(0.05), 0.0);
  EXPECT_NEAR(p.value_at(0.25), 2.0 * 0.15, 1e-12);
  EXPECT_DOUBLE_EQ(p.slope_at(0.25), 2.0);
}

TEST(penalty, lower_bound_activates_below) {
  opt::penalty_spec p{"fwd_transmission", 3.0, 0.8, false};
  EXPECT_DOUBLE_EQ(p.value_at(0.9), 0.0);
  EXPECT_NEAR(p.value_at(0.5), 3.0 * 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(p.slope_at(0.5), -3.0);
}

TEST(penalty, exactly_at_bound_is_free) {
  opt::penalty_spec p{"x", 1.0, 0.5, true};
  EXPECT_DOUBLE_EQ(p.value_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.slope_at(0.5), 0.0);
}

// -------------------------------------------------------------- corners ----

robust::variation_space test_space() {
  robust::variation_space s;
  s.eole_terms = 6;
  return s;
}

TEST(corners, nominal_detection) {
  robust::variation_corner c;
  c.xi.assign(4, 0.0);
  EXPECT_TRUE(c.is_nominal());
  c.temperature = 310.0;
  EXPECT_FALSE(c.is_nominal());
  c.temperature = 300.0;
  c.xi[2] = 0.1;
  EXPECT_FALSE(c.is_nominal());
}

struct strategy_case {
  robust::sampling_strategy strategy;
  std::size_t expected_count;
};

class sampler_strategies : public ::testing::TestWithParam<strategy_case> {};

TEST_P(sampler_strategies, corner_count_matches_cost_model) {
  const auto [strategy, expected] = GetParam();
  robust::corner_sampler sampler(strategy, test_space());
  rng r(4);
  const auto corners = sampler.sample(r, std::nullopt);
  EXPECT_EQ(corners.size(), expected);
  EXPECT_EQ(sampler.corners_per_iteration(), expected);
  // First corner is always nominal-ish for axial strategies.
  for (const auto& c : corners) EXPECT_EQ(c.xi.size(), test_space().eole_terms);
}

INSTANTIATE_TEST_SUITE_P(
    strategies, sampler_strategies,
    ::testing::Values(strategy_case{robust::sampling_strategy::nominal_only, 1},
                      strategy_case{robust::sampling_strategy::axial_single, 4},
                      strategy_case{robust::sampling_strategy::axial_double, 7},
                      strategy_case{robust::sampling_strategy::exhaustive, 27},
                      strategy_case{robust::sampling_strategy::axial_plus_random, 8},
                      strategy_case{robust::sampling_strategy::axial_plus_worst, 8}));

TEST(sampler, axial_double_covers_all_axes_both_sides) {
  robust::corner_sampler sampler(robust::sampling_strategy::axial_double, test_space());
  rng r(5);
  const auto corners = sampler.sample(r, std::nullopt);
  std::set<std::string> names;
  for (const auto& c : corners) names.insert(c.name);
  for (const char* expected :
       {"nominal", "litho+", "litho-", "temp+", "temp-", "eta+", "eta-"})
    EXPECT_TRUE(names.count(expected)) << expected;
}

TEST(sampler, exhaustive_covers_27_distinct_combinations) {
  robust::corner_sampler sampler(robust::sampling_strategy::exhaustive, test_space());
  rng r(6);
  const auto corners = sampler.sample(r, std::nullopt);
  std::set<std::tuple<int, double, double>> combos;
  for (const auto& c : corners) combos.insert({c.litho, c.temperature, c.eta_shift});
  EXPECT_EQ(combos.size(), 27u);
}

TEST(sampler, worst_corner_follows_gradient_signs) {
  const auto space = test_space();
  robust::worst_case_info info;
  info.d_temperature = -3.0;  // loss decreases with T -> worst is cold corner
  info.d_xi = {1.0, 0.0, -1.0, 0.0, 0.0, 0.0};
  const auto c = robust::make_worst_corner(info, space);
  EXPECT_DOUBLE_EQ(c.temperature, space.temp_min);
  EXPECT_GT(c.xi[0], 0.0);
  EXPECT_LT(c.xi[2], 0.0);
  EXPECT_DOUBLE_EQ(c.xi[1], 0.0);
  // Normalized step magnitude.
  double norm = 0.0;
  for (const double v : c.xi) norm += v * v;
  EXPECT_NEAR(std::sqrt(norm), space.worst_xi_scale, 1e-12);
}

TEST(sampler, worst_corner_with_zero_gradient_is_centered) {
  robust::worst_case_info info;
  info.d_xi.assign(6, 0.0);
  info.d_temperature = 0.0;
  const auto c = robust::make_worst_corner(info, test_space());
  for (const double v : c.xi) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(sampler, axial_plus_worst_uses_fallback_without_info) {
  robust::corner_sampler sampler(robust::sampling_strategy::axial_plus_worst, test_space());
  rng r(8);
  const auto corners = sampler.sample(r, std::nullopt);
  EXPECT_EQ(corners.back().name, "worst-case(warmup)");
  robust::worst_case_info info;
  info.d_xi.assign(6, 1.0);
  info.d_temperature = 1.0;
  const auto with_info = sampler.sample(r, info);
  EXPECT_EQ(with_info.back().name, "worst-case");
  EXPECT_DOUBLE_EQ(with_info.back().temperature, test_space().temp_max);
}

TEST(sampler, random_corner_within_ranges) {
  const auto space = test_space();
  rng r(11);
  for (int i = 0; i < 50; ++i) {
    const auto c = robust::random_corner(r, space, "mc");
    EXPECT_GE(c.litho, 0);
    EXPECT_LT(c.litho, static_cast<int>(space.num_litho_corners));
    EXPECT_GE(c.temperature, space.temp_min);
    EXPECT_LE(c.temperature, space.temp_max);
    EXPECT_EQ(c.xi.size(), space.eole_terms);
  }
}

TEST(sampler, strategy_names_are_distinct) {
  std::set<std::string> names;
  for (const auto s :
       {robust::sampling_strategy::nominal_only, robust::sampling_strategy::axial_single,
        robust::sampling_strategy::axial_double, robust::sampling_strategy::exhaustive,
        robust::sampling_strategy::axial_plus_random,
        robust::sampling_strategy::axial_plus_worst})
    names.insert(robust::to_string(s));
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace boson
