#include "fft/conv2d.h"

#include "common/error.h"
#include "fft/fft.h"

namespace boson::fft {

kernel_conv2d::kernel_conv2d(std::size_t nx, std::size_t ny,
                             std::vector<array2d<cplx>> kernels)
    : nx_(nx), ny_(ny) {
  require(nx > 0 && ny > 0, "kernel_conv2d: empty input shape");
  require(!kernels.empty(), "kernel_conv2d: no kernels");
  const std::size_t ks = kernels.front().nx();
  require(ks % 2 == 1, "kernel_conv2d: kernel size must be odd");
  for (const auto& k : kernels)
    require(k.nx() == ks && k.ny() == ks, "kernel_conv2d: kernels must share one square shape");

  px_ = next_power_of_two(nx + ks - 1);
  py_ = next_power_of_two(ny + ks - 1);
  const std::size_t center = ks / 2;

  kernel_ffts_.reserve(kernels.size());
  for (const auto& kernel : kernels) {
    // Place the kernel with its center wrapped to (0, 0) so that the
    // frequency-domain product implements a centered "same" convolution.
    array2d<cplx> padded(px_, py_, cplx{});
    for (std::size_t ux = 0; ux < ks; ++ux) {
      for (std::size_t uy = 0; uy < ks; ++uy) {
        const std::size_t wx = (ux + px_ - center) % px_;
        const std::size_t wy = (uy + py_ - center) % py_;
        padded(wx, wy) = kernel(ux, uy);
      }
    }
    fft2d_inplace(padded, false);
    kernel_ffts_.push_back(std::move(padded));
  }
}

array2d<cplx> kernel_conv2d::pad_complex(const array2d<cplx>& in) const {
  require(in.nx() == nx_ && in.ny() == ny_, "kernel_conv2d: input shape mismatch");
  array2d<cplx> padded(px_, py_, cplx{});
  for (std::size_t ix = 0; ix < nx_; ++ix)
    for (std::size_t iy = 0; iy < ny_; ++iy) padded(ix, iy) = in(ix, iy);
  return padded;
}

array2d<cplx> kernel_conv2d::crop(const array2d<cplx>& padded) const {
  array2d<cplx> out(nx_, ny_);
  for (std::size_t ix = 0; ix < nx_; ++ix)
    for (std::size_t iy = 0; iy < ny_; ++iy) out(ix, iy) = padded(ix, iy);
  return out;
}

array2d<cplx> kernel_conv2d::transform_input(const array2d<double>& in) const {
  require(in.nx() == nx_ && in.ny() == ny_, "kernel_conv2d: input shape mismatch");
  array2d<cplx> padded(px_, py_, cplx{});
  for (std::size_t ix = 0; ix < nx_; ++ix)
    for (std::size_t iy = 0; iy < ny_; ++iy) padded(ix, iy) = in(ix, iy);
  fft2d_inplace(padded, false);
  return padded;
}

array2d<cplx> kernel_conv2d::apply(const array2d<cplx>& in_fft, std::size_t k) const {
  require(k < kernel_ffts_.size(), "kernel_conv2d::apply: kernel index out of range");
  require(in_fft.nx() == px_ && in_fft.ny() == py_, "kernel_conv2d::apply: bad transform");
  array2d<cplx> work(px_, py_);
  const auto& h = kernel_ffts_[k];
  for (std::size_t i = 0; i < work.size(); ++i)
    work.data()[i] = in_fft.data()[i] * h.data()[i];
  fft2d_inplace(work, true);
  return crop(work);
}

array2d<cplx> kernel_conv2d::adjoint(const array2d<cplx>& g, std::size_t k) const {
  return adjoint_sum_impl({&g}, {k});
}

array2d<cplx> kernel_conv2d::adjoint_sum(const std::vector<array2d<cplx>>& g) const {
  require(g.size() == kernel_ffts_.size(), "kernel_conv2d::adjoint_sum: count mismatch");
  std::vector<const array2d<cplx>*> ptrs;
  std::vector<std::size_t> idx;
  ptrs.reserve(g.size());
  idx.reserve(g.size());
  for (std::size_t k = 0; k < g.size(); ++k) {
    ptrs.push_back(&g[k]);
    idx.push_back(k);
  }
  return adjoint_sum_impl(ptrs, idx);
}

array2d<cplx> kernel_conv2d::adjoint_sum_impl(const std::vector<const array2d<cplx>*>& g,
                                              const std::vector<std::size_t>& kernel_idx) const {
  array2d<cplx> accum(px_, py_, cplx{});
  for (std::size_t t = 0; t < g.size(); ++t) {
    array2d<cplx> padded = pad_complex(*g[t]);
    fft2d_inplace(padded, false);
    const auto& h = kernel_ffts_[kernel_idx[t]];
    for (std::size_t i = 0; i < accum.size(); ++i)
      accum.data()[i] += padded.data()[i] * std::conj(h.data()[i]);
  }
  fft2d_inplace(accum, true);
  return crop(accum);
}

}  // namespace boson::fft
