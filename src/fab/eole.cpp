#include "fab/eole.h"

#include <cmath>

#include "common/error.h"
#include "linalg/eig_sym.h"

namespace boson::fab {

eole_field::eole_field(std::size_t nx, std::size_t ny, double dx, double dy,
                       const eole_settings& settings)
    : nx_(nx), ny_(ny), settings_(settings) {
  require(nx > 0 && ny > 0, "eole_field: empty grid");
  require(settings.anchors_x >= 2 && settings.anchors_y >= 2, "eole_field: need >= 2x2 anchors");
  require(settings.corr_length > 0 && settings.sigma >= 0, "eole_field: invalid settings");

  const std::size_t n_anchor = settings.anchors_x * settings.anchors_y;
  const double width = static_cast<double>(nx) * dx;
  const double height = static_cast<double>(ny) * dy;

  // Anchor points spread uniformly over the design region.
  std::vector<double> ax(n_anchor), ay(n_anchor);
  for (std::size_t i = 0; i < settings.anchors_x; ++i) {
    for (std::size_t j = 0; j < settings.anchors_y; ++j) {
      const std::size_t k = i * settings.anchors_y + j;
      ax[k] = width * (static_cast<double>(i) + 0.5) / static_cast<double>(settings.anchors_x);
      ay[k] = height * (static_cast<double>(j) + 0.5) / static_cast<double>(settings.anchors_y);
    }
  }

  const double s2 = settings.sigma * settings.sigma;
  const double l2 = 2.0 * settings.corr_length * settings.corr_length;
  auto cov = [&](double x1, double y1, double x2, double y2) {
    const double d2 = (x1 - x2) * (x1 - x2) + (y1 - y2) * (y1 - y2);
    return s2 * std::exp(-d2 / l2);
  };

  la::dmat c(n_anchor, n_anchor);
  for (std::size_t a = 0; a < n_anchor; ++a)
    for (std::size_t b = 0; b < n_anchor; ++b) c(a, b) = cov(ax[a], ay[a], ax[b], ay[b]);

  la::eig_result<double> eig = la::sym_eig(std::move(c));

  // Keep the strongest positive modes (eigenvalues ascending).
  const std::size_t keep = std::min(settings.num_terms, n_anchor);
  basis_.reserve(keep);
  for (std::size_t t = 0; t < keep; ++t) {
    const std::size_t j = n_anchor - 1 - t;
    const double lambda = eig.values[j];
    if (lambda <= 1e-14) break;
    array2d<double> b(nx, ny, 0.0);
    const double inv_sqrt_lambda = 1.0 / std::sqrt(lambda);
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double x = (static_cast<double>(ix) + 0.5) * dx;
      for (std::size_t iy = 0; iy < ny; ++iy) {
        const double y = (static_cast<double>(iy) + 0.5) * dy;
        double acc = 0.0;
        for (std::size_t a = 0; a < n_anchor; ++a)
          acc += eig.vectors(a, j) * cov(x, y, ax[a], ay[a]);
        b(ix, iy) = acc * inv_sqrt_lambda;
      }
    }
    basis_.push_back(std::move(b));
  }
  check_numeric(!basis_.empty(), "eole_field: covariance has no positive spectrum");
}

array2d<double> eole_field::field(const dvec& xi, double global_shift) const {
  require(xi.size() == basis_.size(), "eole_field::field: xi size mismatch");
  array2d<double> eta(nx_, ny_, settings_.eta0 + global_shift);
  for (std::size_t m = 0; m < basis_.size(); ++m) {
    if (xi[m] == 0.0) continue;
    add_scaled(eta, xi[m], basis_[m]);
  }
  return eta;
}

const array2d<double>& eole_field::basis(std::size_t m) const {
  require(m < basis_.size(), "eole_field::basis: index out of range");
  return basis_[m];
}

dvec eole_field::project_gradient(const array2d<double>& d_eta) const {
  require(d_eta.nx() == nx_ && d_eta.ny() == ny_, "eole_field: gradient shape mismatch");
  dvec g(basis_.size(), 0.0);
  for (std::size_t m = 0; m < basis_.size(); ++m) {
    double acc = 0.0;
    const auto& b = basis_[m];
    for (std::size_t i = 0; i < b.size(); ++i) acc += d_eta.data()[i] * b.data()[i];
    g[m] = acc;
  }
  return g;
}

}  // namespace boson::fab
