/// \file scheduler.h
/// The campaign execution engine: expands a `campaign_spec` and runs its
/// jobs across a bounded pool of worker threads with per-job retry,
/// cooperative cancellation, and durability. Work is distributed *elastically*
/// through journal leases (`lease.h`): every worker process claims pending
/// jobs by appending to the shared journal, heartbeats them while running,
/// and takes over leases whose owners died — so workers can join or leave a
/// campaign freely, and a SIGKILLed worker's jobs get re-leased instead of
/// stranded. Every state transition lands in the append-only journal and
/// every completed job in the result store; a killed scheduler resumes by
/// replaying the journal, restarting mid-flight jobs from their last
/// persisted checkpoint instead of iteration zero.
///
/// The static `--shard i/N` partition survives as a deprecated *filter*: a
/// sharded worker only considers its slice, but coverage no longer depends
/// on every shard index being served — any worker can finish any unleased
/// job it is allowed to see.

#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "api/observer.h"
#include "api/session.h"
#include "common/error.h"
#include "runtime/campaign.h"
#include "runtime/fault.h"
#include "runtime/lease.h"
#include "runtime/result_store.h"

namespace boson::runtime {

/// Thrown through a job when `scheduler::cancel` interrupts it at an
/// iteration/stage boundary. The job's last checkpoint stays on disk, so a
/// later `resume` continues where the cancellation struck.
class cancelled_error : public error {
 public:
  using error::error;
};

/// Thrown through a job when a heartbeat discovers its lease is gone —
/// another worker proved it expired and took the job over. The attempt is
/// abandoned without journaling a result; the new owner's result is the one
/// that counts.
class lease_lost_error : public error {
 public:
  using error::error;
};

/// Pluggable job execution: the default runs the spec through an
/// `api::session` into `<campaign_dir>/jobs/<name>/`; tests and benchmarks
/// substitute synthetic executors to exercise the scheduling machinery
/// without simulations. `watcher` is the scheduler's per-job observer (it
/// enforces cancellation and lease heartbeats — executors should forward
/// progress through it).
using job_executor = std::function<api::experiment_result(
    const campaign_job& job, const api::run_control& control, api::observer* watcher)>;

/// The worker id a scheduler uses when none is configured: "w<pid>", unique
/// per process on one machine — the normal one-worker-per-process case.
std::string default_worker_id();

struct scheduler_options {
  /// Campaign working directory: journal, result store, and job artifacts.
  std::string campaign_dir = "boson_campaign";

  /// Identity this process claims leases under. Empty: `default_worker_id()`.
  /// Two live workers must never share an id (threads within one scheduler
  /// share it by design).
  std::string worker_id;

  /// Deprecated static filter: this worker only considers its `i/N` slice of
  /// the job list (default: everything). Leases make this unnecessary —
  /// prefer pointing several unsharded workers at one campaign directory.
  shard_range shard;

  /// Overrides of the campaign's scheduler settings (unset: use the spec's).
  std::optional<std::size_t> workers;
  std::optional<std::size_t> max_retries;
  std::optional<std::size_t> checkpoint_every;
  std::optional<double> lease_ttl;

  bool write_artifacts = true;

  /// Capture a span trace per job attempt and write it as a Chrome
  /// `trace.json` artifact next to the job's summary.json. Also enabled
  /// process-wide by the BOSON_TRACE environment variable.
  bool trace = false;

  /// Shared progress receiver; must be thread-safe (see `api::observer`).
  /// nullptr: each worker logs through a worker-prefixed `log_observer`.
  api::observer* watcher = nullptr;

  /// Execution override for tests/benchmarks (empty: the api::session path).
  job_executor executor;

  /// Lease clock override (empty: `wall_clock_seconds`). Tests drive expiry
  /// by injecting manual clocks instead of sleeping.
  clock_fn clock;

  /// Deterministic kill points (tests / `--fault`); nullptr: none.
  fault_injector* faults = nullptr;

  /// Segmented-journal layout for *new* campaigns (see `journal_options`):
  /// all zero keeps the legacy single `journal.jsonl`; any nonzero value
  /// creates a rotating/compacting `journal/` store directory instead.
  /// Existing campaigns keep whichever layout they were created with.
  std::size_t segment_bytes = 0;
  std::size_t segment_records = 0;
  std::size_t compact_segments = 0;
};

/// What one `scheduler::run` call did to the jobs it considered.
struct scheduler_report {
  std::size_t shard_jobs = 0;   ///< jobs this worker was allowed to consider
  std::size_t completed = 0;    ///< finished during this run
  std::size_t skipped = 0;      ///< already completed per the journal
  std::size_t failed = 0;       ///< exhausted their retry budget
  std::size_t cancelled = 0;    ///< interrupted by `cancel`
  std::size_t resumed = 0;      ///< restarted from a mid-flight checkpoint
  std::size_t claimed = 0;      ///< leases this run won
  std::size_t stolen = 0;       ///< claims that took over an expired lease
  std::size_t lost = 0;         ///< attempts abandoned because the lease was lost
  std::size_t left_leased = 0;  ///< jobs skipped because another worker holds a live lease
  double wall_seconds = 0.0;
  std::vector<job_result_row> rows;    ///< result-store rows appended this run
  std::vector<std::string> errors;     ///< messages of permanently-failed jobs
};

/// Lease-coordinated, journaled, resumable campaign runner.
class scheduler {
 public:
  scheduler(campaign_spec spec, scheduler_options options);

  /// Execute pending jobs this worker can claim; blocks until every job it
  /// considers is done, held by another live worker, or failed permanently
  /// (it never waits on another worker's live lease — re-run, or run a
  /// second worker, to pick up leftovers). Safe to call again on the same
  /// campaign directory — completed jobs are skipped, failed/cancelled jobs
  /// get a fresh retry budget.
  scheduler_report run();

  /// Cooperative cancellation, callable from any thread (or from a job's
  /// observer callback): no new jobs are dispatched and running jobs stop at
  /// their next iteration/stage boundary, leaving their checkpoints behind.
  void cancel() { cancel_.store(true); }
  bool cancel_requested() const { return cancel_.load(); }

  const campaign_spec& spec() const { return spec_; }

  /// Effective settings after applying option overrides to the spec.
  scheduler_settings effective_settings() const;

  /// Effective worker id (the configured one, or `default_worker_id()`).
  std::string worker_id() const;

 private:
  api::experiment_result execute_with_session(const campaign_job& job,
                                              const api::run_control& control,
                                              api::observer* watcher);

  campaign_spec spec_;
  scheduler_options options_;
  std::atomic<bool> cancel_{false};
};

/// Path helpers shared by the scheduler and the CLI.
std::string journal_path(const std::string& campaign_dir);
std::string campaign_spec_path(const std::string& campaign_dir);
std::string job_directory(const std::string& campaign_dir, const std::string& job_name);

}  // namespace boson::runtime
