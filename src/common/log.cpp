#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/env.h"

namespace boson {

namespace {

log_level level_from_env() {
  const std::string s = env_string("BOSON_LOG", "warn");
  if (s == "debug") return log_level::debug;
  if (s == "info") return log_level::info;
  if (s == "warn") return log_level::warn;
  if (s == "error") return log_level::err;
  if (s == "off") return log_level::off;
  return log_level::warn;
}

std::atomic<log_level>& level_storage() {
  static std::atomic<log_level> level{level_from_env()};
  return level;
}

const char* level_tag(log_level level) {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO ";
    case log_level::warn: return "WARN ";
    case log_level::err: return "ERROR";
    default: return "     ";
  }
}

}  // namespace

void set_log_level(log_level level) { level_storage().store(level); }

log_level current_log_level() { return level_storage().load(); }

void log_line(log_level level, const std::string& message) {
  if (level < current_log_level()) return;
  static std::mutex io_mutex;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double t = std::chrono::duration<double>(clock::now() - start).count();
  const std::lock_guard<std::mutex> lock(io_mutex);
  std::fprintf(stderr, "[%9.3f] %s %s\n", t, level_tag(level), message.c_str());
}

}  // namespace boson
