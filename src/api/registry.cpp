#include "api/registry.h"

#include "common/error.h"
#include "common/text.h"

namespace boson::api {

registry& registry::global() {
  static registry* instance = [] {
    auto* r = new registry();

    r->register_device("bend", [](double res) { return dev::make_bend(res); },
                       "90-degree waveguide bend (maximize TM1 transmission)");
    r->register_device("crossing", [](double res) { return dev::make_crossing(res); },
                       "waveguide crossing (maximize transmission, low crosstalk)");
    r->register_device("isolator", [](double res) { return dev::make_isolator(res); },
                       "magneto-optic isolator (minimize isolation contrast)");

    using core::method_id;
    r->register_method("density", method_id::density);
    r->register_method("density_m", method_id::density_m);
    r->register_method("ls", method_id::ls);
    r->register_method("ls_m", method_id::ls_m);
    r->register_method("invfabcor_1", method_id::invfabcor_1);
    r->register_method("invfabcor_3", method_id::invfabcor_3);
    r->register_method("invfabcor_m_1", method_id::invfabcor_m_1);
    r->register_method("invfabcor_m_3", method_id::invfabcor_m_3);
    r->register_method("invfabcor_m_3_eff", method_id::invfabcor_m_3_eff);
    r->register_method("ls_ed", method_id::ls_ed);
    r->register_method("boson", method_id::boson);
    r->register_method("boson_no_reshape", method_id::boson_no_reshape);
    r->register_method("boson_no_relax", method_id::boson_no_relax);
    r->register_method("boson_exhaustive", method_id::boson_exhaustive);
    r->register_method("boson_random_init", method_id::boson_random_init);

    r->register_objective("device_default",
                          {"", "the device's own objective (contrast for the isolator)"});
    r->register_objective(
        "fwd_transmission",
        {"fwd_transmission",
         "plain forward-transmission efficiency ('-eff'; ratio-objective devices only)"});
    return r;
  }();
  return *instance;
}

// -------------------------------------------------------------- devices ----

void registry::register_device(const std::string& name, device_factory factory,
                               const std::string& description) {
  require(!name.empty(), "registry: device name must not be empty");
  require(factory != nullptr, "registry: device factory must not be null");
  const std::lock_guard<std::mutex> lock(mutex_);
  devices_[name] = {std::move(factory), description};
}

bool registry::has_device(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return devices_.count(name) != 0;
}

dev::device_spec registry::make_device(const std::string& name, double resolution) const {
  device_factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = devices_.find(name);
    if (it != devices_.end()) factory = it->second.factory;
  }
  if (factory == nullptr)
    throw bad_argument("registry: unknown device '" + name +
                       "' (known: " + join_names(device_names()) +
                       did_you_mean(name, device_names()) + ")");
  return factory(resolution);
}

std::vector<std::string> registry::device_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(devices_.size());
  for (const auto& [name, entry] : devices_) names.push_back(name);
  return names;
}

std::string registry::device_description(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = devices_.find(name);
  require(it != devices_.end(), "registry: unknown device '" + name + "'");
  return it->second.description;
}

// -------------------------------------------------------------- methods ----

void registry::register_method(const std::string& name, core::method_recipe recipe) {
  require(!name.empty(), "registry: method name must not be empty");
  core::validate_recipe(recipe);
  const std::lock_guard<std::mutex> lock(mutex_);
  methods_[name] = std::move(recipe);
}

void registry::register_method(const std::string& name, core::method_id id) {
  register_method(name, core::preset_recipe(id));
}

bool registry::has_method(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return methods_.count(name) != 0;
}

core::method_recipe registry::method(const std::string& name) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = methods_.find(name);
    if (it != methods_.end()) return it->second;
  }
  throw bad_argument("registry: unknown method '" + name +
                     "' (known: " + join_names(method_names()) +
                     did_you_mean(name, method_names()) + ")");
}

std::vector<std::string> registry::method_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(methods_.size());
  for (const auto& [name, id] : methods_) names.push_back(name);
  return names;
}

// ----------------------------------------------------------- objectives ----

void registry::register_objective(const std::string& name, objective_entry entry) {
  require(!name.empty(), "registry: objective name must not be empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  objectives_[name] = std::move(entry);
}

bool registry::has_objective(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return objectives_.count(name) != 0;
}

objective_entry registry::objective(const std::string& name) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = objectives_.find(name);
    if (it != objectives_.end()) return it->second;
  }
  throw bad_argument("registry: unknown objective '" + name +
                     "' (known: " + join_names(objective_names()) +
                     did_you_mean(name, objective_names()) + ")");
}

std::vector<std::string> registry::objective_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(objectives_.size());
  for (const auto& [name, entry] : objectives_) names.push_back(name);
  return names;
}

}  // namespace boson::api
