/// \file evaluate.h
/// Evaluation protocols for finished designs: pre-fabrication metrics (the
/// "numerically plausible" numbers a naive flow reports), the post-fab
/// Monte-Carlo protocol of Section IV-B (random litho corner, temperature,
/// and EOLE etch field per sample, hard-etch binarization), and spectral
/// sweeps over operating wavelength.

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/design_problem.h"

namespace boson::core {

/// Pre-fabrication ("numerically plausible") metrics: the design pattern is
/// binarized at 0.5 and simulated at the nominal operating point with no
/// fabrication model — exactly what a naive inverse-design flow reports.
std::map<std::string, double> prefab_metrics(const design_problem& problem,
                                             const array2d<double>& rho_design);

/// Statistics of the post-fabrication Monte-Carlo evaluation.
struct mc_stats {
  double fom_mean = 0.0;
  double fom_std = 0.0;
  double fom_min = 0.0;
  double fom_max = 0.0;
  std::size_t samples = 0;
  std::map<std::string, double> metric_means;
};

/// Post-fabrication evaluation protocol (Section IV-B): `num_samples` Monte
/// Carlo draws of (lithography corner, temperature, EOLE etch field), hard
/// etch binarization, FoM per the device objective. Samples run concurrently.
/// `use_operator_cache` routes the per-sample operators through the global
/// engine cache (on by default — the library-wide default; benchmarks switch
/// it off to measure the uncached baseline, and BOSON_SIM_CACHE=0 disables
/// caching globally). The statistics are identical either way.
mc_stats postfab_monte_carlo(const design_problem& problem, const array2d<double>& mask,
                             std::size_t num_samples, std::uint64_t seed,
                             bool use_operator_cache = true);

/// One point of a spectral-response sweep.
struct spectrum_point {
  double lambda_um = 0.0;
  double fom = 0.0;
  std::map<std::string, double> metrics;
};

/// Evaluate a finished mask across operating wavelengths (nominal
/// fabrication corner, hard etch). An extension beyond the paper's
/// evaluation: it quantifies how the variation-robust design behaves off the
/// central wavelength. Wavelengths are processed concurrently.
std::vector<spectrum_point> wavelength_sweep(const design_problem& problem,
                                             const array2d<double>& mask,
                                             const dvec& wavelengths_um);

/// One point of a lithography process-window scan.
struct process_window_point {
  double defocus_um = 0.0;
  double dose = 1.0;
  double fom = 0.0;
};

/// Classical process-window analysis: image the mask through every
/// (defocus, dose) combination, hard-etch at the nominal threshold, and
/// report the device FoM. Each point builds its own Hopkins model, so keep
/// the grids small (e.g. 3 x 3); points run concurrently.
std::vector<process_window_point> litho_process_window(const design_problem& problem,
                                                       const array2d<double>& mask,
                                                       const dvec& defocus_values_um,
                                                       const dvec& dose_values);

}  // namespace boson::core
