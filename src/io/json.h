#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.h"

namespace boson::io {

/// Malformed JSON text; the message carries line:column of the offending
/// token (e.g. "json: 3:14: expected ':' after object key").
class json_parse_error : public error {
 public:
  using error::error;
};

/// Minimal JSON document model: writer plus a strict parser, enough to
/// round-trip experiment specs and summaries (nested objects, arrays,
/// numbers, strings, booleans, null).
class json_value {
 public:
  json_value() : kind_(kind::null) {}
  json_value(bool b) : kind_(kind::boolean), bool_(b) {}               // NOLINT(google-explicit-constructor)
  json_value(double d) : kind_(kind::number), number_(d) {}            // NOLINT(google-explicit-constructor)
  json_value(int i) : kind_(kind::number), number_(i) {}               // NOLINT(google-explicit-constructor)
  json_value(std::size_t u)                                            // NOLINT(google-explicit-constructor)
      : kind_(kind::number), number_(static_cast<double>(u)) {}
  json_value(const char* s) : kind_(kind::string), string_(s) {}       // NOLINT(google-explicit-constructor)
  json_value(std::string s) : kind_(kind::string), string_(std::move(s)) {}  // NOLINT(google-explicit-constructor)

  static json_value object() {
    json_value v;
    v.kind_ = kind::object;
    return v;
  }
  static json_value array() {
    json_value v;
    v.kind_ = kind::array;
    return v;
  }

  /// Parse a complete JSON document. Throws `json_parse_error` with
  /// line:column context on malformed input (including trailing garbage and
  /// duplicate object keys).
  static json_value parse(const std::string& text);

  /// Parse a JSON file; throws `io_error` when unreadable, `json_parse_error`
  /// (message prefixed with the path) when malformed.
  static json_value parse_file(const std::string& path);

  /// Object member access (creates the member; value must be an object).
  json_value& operator[](const std::string& key);

  /// Append to an array.
  json_value& push_back(json_value v);

  /// Convenience: object from a metric map.
  static json_value from_map(const std::map<std::string, double>& m);

  bool is_null() const { return kind_ == kind::null; }
  bool is_bool() const { return kind_ == kind::boolean; }
  bool is_number() const { return kind_ == kind::number; }
  bool is_string() const { return kind_ == kind::string; }
  bool is_object() const { return kind_ == kind::object; }
  bool is_array() const { return kind_ == kind::array; }

  /// Human-readable name of the stored kind ("object", "number", ...).
  const char* kind_name() const;

  /// Checked readers; throw `bad_argument` naming the actual kind on
  /// mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Member lookup on an object: nullptr when absent (throws `bad_argument`
  /// when this value is not an object).
  const json_value* find(const std::string& key) const;

  /// Member lookup that throws `bad_argument` when the key is missing.
  const json_value& at(const std::string& key) const;

  /// Object members in insertion order.
  const std::vector<std::pair<std::string, json_value>>& members() const;

  /// Array elements.
  const std::vector<json_value>& elements() const;

  /// Number of members (object) or elements (array); 0 for scalars.
  std::size_t size() const;

  /// Serialize; `indent` < 0 emits compact JSON.
  std::string dump(int indent = 2) const;

  /// Write to a file (throws io_error on failure).
  void write_file(const std::string& path, int indent = 2) const;

 private:
  enum class kind { null, boolean, number, string, object, array };
  void dump_impl(std::string& out, int indent, int depth) const;

  kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, json_value>> members_;
  std::vector<json_value> elements_;
};

}  // namespace boson::io
