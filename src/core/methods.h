/// \file methods.h
/// The method layer: `run_method` drives one `core::method_recipe` end to
/// end (optimize, derive the mask, evaluate pre-fab metrics, post-fab Monte
/// Carlo). The fifteen methodologies compared in the paper's tables (density
/// baselines, LS-ED, InvFabCor two-stage correction, BOSON-1 and its Table
/// II ablations) are built-in *presets* expressed as recipes via
/// `preset_recipe`; the `method_id` enum survives only as a deprecated alias
/// for them. Shared experiment configuration lives in `experiment_config`
/// with BOSON_BENCH_SCALE / BOSON_SEED environment overrides.

#pragma once

#include <cstdint>
#include <string>

#include "core/design_problem.h"
#include "core/evaluate.h"
#include "core/recipe.h"
#include "core/run.h"
#include "devices/builders.h"
#include "fab/eole.h"
#include "fab/litho.h"
#include "robust/corners.h"

namespace boson::core {

/// Deprecated closed enumeration of the paper's methods; kept as an alias
/// layer only — each id resolves to a preset recipe via `preset_recipe`.
/// Naming follows the paper: '-M' adds minimum-feature-size blur, '-#' is
/// the number of lithography corners matched during mask correction, '-eff'
/// switches the isolator objective to plain transmission efficiency. The
/// boson_* variants are the Table II ablations.
enum class method_id {
  density,
  density_m,
  ls,
  ls_m,
  invfabcor_1,
  invfabcor_3,
  invfabcor_m_1,
  invfabcor_m_3,
  invfabcor_m_3_eff,
  ls_ed,               ///< prior-art geometry-corner baseline (erosion/dilation)
  boson,
  boson_no_reshape,    ///< - loss landscape reshaping (sparse objective)
  boson_no_relax,      ///< - conditional subspace relaxation
  boson_exhaustive,    ///< exhaustive corner sweeping instead of adaptive
  boson_random_init,   ///< random instead of light-concentrated init
};

/// The preset recipe a paper method resolves to (label = the paper name).
method_recipe preset_recipe(method_id id);

/// All fifteen preset ids in enum order (the paper's table order).
const std::vector<method_id>& all_method_ids();

std::string method_name(method_id id);

/// Whether the method's recipe uses the level-set parameterization (the
/// density baselines are the only per-pixel methods). Exposed so callers
/// building a `design_problem` to evaluate a finished mask can match the
/// parameterization the method optimized with.
bool method_uses_levelset(method_id id);

/// The objective override baked into the method's recipe ("" for most;
/// "fwd_transmission" for the '-eff' variant). Exposed so spec validation
/// can reject device/method combinations run_method would refuse.
std::string method_objective_override(method_id id);

/// Shared experiment configuration. `scale` (usually BOSON_BENCH_SCALE)
/// multiplies iteration counts and Monte-Carlo samples for quick runs.
struct experiment_config {
  double resolution = 0.05;
  std::size_t iterations = 50;
  std::size_t relax_epochs = 20;
  std::size_t mc_samples = 20;
  double learning_rate = 0.05;
  std::uint64_t seed = 7;
  double scale = 1.0;
  fab::litho_settings litho;
  fab::eole_settings eole;
  robust::variation_space space;

  /// Linear-backend selection for the optimization's FDFD solves (defaults
  /// follow the BOSON_BACKEND environment variable).
  sim::engine_settings engine;

  /// Route repeated operators through the global engine cache (the
  /// library-wide default; BOSON_SIM_CACHE=0 disables caching globally).
  bool use_operator_cache = true;

  /// Record the per-iteration trajectory in `run_result` (the Fig. 5
  /// series); observers receive the records either way.
  bool record_trajectory = true;

  /// Objective override applied when the method recipe does not set one
  /// (e.g. "fwd_transmission" turns the isolator contrast objective into
  /// plain transmission efficiency). Only valid for ratio objectives.
  std::string objective_override;

  std::size_t scaled_iterations() const;
  std::size_t scaled_samples() const;
  std::size_t scaled_relax() const;
};

/// Load the default experiment configuration, applying BOSON_BENCH_SCALE and
/// BOSON_SEED from the environment.
experiment_config default_config();

/// Outcome of running one method end to end on one device.
struct method_result {
  std::string method;
  std::map<std::string, double> prefab;  ///< pre-fabrication metrics
  double prefab_fom = 0.0;
  mc_stats postfab;                      ///< post-fabrication Monte Carlo
  run_result run;
  array2d<double> mask;                  ///< binarized mask handed to fab
};

/// Build the design problem for a device/parameterization pair.
/// `use_levelset` selects the paper's default level-set parameterization;
/// density otherwise. `density_blur_cells` configures built-in MFS blur for
/// the density baseline.
design_problem make_problem(const dev::device_spec& spec, bool use_levelset,
                            const experiment_config& cfg, double density_blur_cells = 0.0);

/// Build the design problem a recipe describes: the parameterization policy
/// resolves against `recipe_policies::global()`, the fabrication context
/// comes from the config (the problem every stage of `run_method` shares).
design_problem make_problem(const dev::device_spec& spec, const method_recipe& recipe,
                            const experiment_config& cfg);

/// Initial latent variables: light-concentrated (device heuristic), the
/// conventional uniform-gray start of density-based topology optimization,
/// or random. (These are the built-in initialization policies.)
dvec concentrated_init(const design_problem& problem);
dvec gray_init(const design_problem& problem);
dvec random_init(const design_problem& problem, std::uint64_t seed);

/// The `run_options` a recipe resolves to under a config: every policy
/// looked up, iteration/learning-rate overrides and the objective override
/// merged. Exposed so tests can golden-check preset resolution and
/// `boson_cli describe` can show the effective optimization settings;
/// `run_method` uses exactly this mapping (observer hooks are wired on top).
run_options resolved_run_options(const method_recipe& recipe, const experiment_config& cfg);

/// Observer hooks and stage toggles for `run_method`. The callbacks replace
/// printf progress reporting: `on_stage` fires when a pipeline stage starts
/// ("optimize", "mask_correction", "prefab_eval", "postfab_monte_carlo") and
/// `on_iteration` forwards the optimizer's per-iteration record.
struct method_hooks {
  iteration_callback on_iteration;
  std::function<void(const std::string& stage)> on_stage;

  /// Skip the built-in post-fab Monte Carlo (callers with their own
  /// evaluation plan run it separately); `method_result::postfab` is then
  /// left with zero samples.
  bool run_postfab_mc = true;

  /// Durability plumbing (see `run_options`): emit a resumable snapshot every
  /// `checkpoint_every` optimizer iterations, and/or restore one captured by
  /// an identical configuration before the first iteration.
  std::size_t checkpoint_every = 0;
  checkpoint_callback on_checkpoint;
  std::shared_ptr<const run_checkpoint> resume;
};

/// Run one recipe end to end: optimize, derive the mask (through the
/// recipe's mask-correction stage when set), evaluate pre-fab metrics and
/// the post-fab Monte Carlo. Validates the recipe first.
method_result run_method(const dev::device_spec& spec, const method_recipe& recipe,
                         const experiment_config& cfg,
                         const method_hooks& hooks = {});

/// Deprecated alias: run a paper preset by enum id (exactly
/// `run_method(spec, preset_recipe(id), cfg, hooks)`).
method_result run_method(const dev::device_spec& spec, method_id id,
                         const experiment_config& cfg,
                         const method_hooks& hooks = {});

/// Binarize a continuous pattern at 0.5 (the mask handed to fabrication).
array2d<double> binarize(const array2d<double>& rho, double threshold = 0.5);

/// Relative improvement of `ours` over `baseline` oriented by the FoM
/// direction (Table I's "avg improvement" definition).
double relative_improvement(double baseline_fom, double our_fom, bool lower_better);

}  // namespace boson::core
