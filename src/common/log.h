#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace boson {

/// Severity levels; messages below the active level are suppressed.
enum class log_level { debug = 0, info = 1, warn = 2, err = 3, off = 4 };

/// Set the process-wide log level. Defaults to the BOSON_LOG environment
/// variable ("debug", "info", "warn", "error", "off"), falling back to warn
/// so library consumers see problems but not progress chatter.
void set_log_level(log_level level);
log_level current_log_level();

/// Output shape. `text` is the human line
/// `2026-08-09T12:34:56.789Z [T3] WARN  msg key=value`; `json` renders the
/// same record as one JSON object per line (machine-parseable service logs).
/// Defaults to the BOSON_LOG_FORMAT environment variable ("text", "json").
enum class log_format { text = 0, json = 1 };
void set_log_format(log_format format);
log_format current_log_format();

/// Structured `key=value` fields attached to a log record, rendered after
/// the message (text) or as extra object members (json).
using log_fields = std::vector<std::pair<std::string, std::string>>;

/// Emit a single timestamped line to the log sink if `level` is enabled.
void log_line(log_level level, const std::string& message);
void log_line(log_level level, const std::string& message, const log_fields& fields);

/// Redirect fully rendered log lines (no trailing newline) to `sink`
/// instead of stderr; nullptr restores stderr. Test hook — not intended
/// for concurrent re-registration under load.
void set_log_sink(void (*sink)(const std::string& line));

/// Small dense id for the calling thread (0 for the first thread that
/// logs/traces, then 1, 2, ... in first-use order). Stable for the thread's
/// lifetime; used by log timestamps and trace events.
std::uint32_t thread_ordinal();

namespace detail {
template <class... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <class... Args>
void log_debug(Args&&... args) {
  if (current_log_level() <= log_level::debug)
    log_line(log_level::debug, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_info(Args&&... args) {
  if (current_log_level() <= log_level::info)
    log_line(log_level::info, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_warn(Args&&... args) {
  if (current_log_level() <= log_level::warn)
    log_line(log_level::warn, detail::concat(std::forward<Args>(args)...));
}

template <class... Args>
void log_error(Args&&... args) {
  if (current_log_level() <= log_level::err)
    log_line(log_level::err, detail::concat(std::forward<Args>(args)...));
}

}  // namespace boson
