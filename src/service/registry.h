/// \file registry.h
/// The service's durable campaign ledger: every submitted campaign gets an
/// id, a per-tenant directory under one data root, and a lifecycle state
/// (queued → running → done/failed/cancelled → deleted). State changes
/// append latest-record-wins lines to a `registry/` segment store
/// (`store::segment_log`) in the data root, so a restarted service rescans
/// the ledger and finds every campaign exactly where it left it — and
/// because every mutation runs under the store's cross-process exclusive
/// lock, *several service processes can share one data root*: ids stay
/// unique, quotas are enforced against the union of submits, and a
/// queued→running claim is atomic across the fleet. A legacy
/// `registry.jsonl` from an older data root is migrated into the store on
/// first open. Tenants are directories: quota and listing are per tenant,
/// and two tenants can submit campaigns with the same name without
/// colliding.

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "io/json.h"
#include "runtime/campaign.h"

namespace boson::store {
class segment_log;
}

namespace boson::service {

/// Thrown when a tenant's queued+running campaign count is at its quota.
/// The control plane maps it to 429.
class quota_error : public error {
 public:
  using error::error;
};

/// One registered campaign.
struct campaign_record {
  std::string id;      ///< registry-unique ("c0001", assigned at submit)
  std::string tenant;
  std::string name;    ///< the campaign_spec's name (display only)
  std::string state;   ///< queued | running | done | failed | cancelled
  std::string dir;     ///< campaign directory (spec, journal, store, jobs)
  std::size_t total_jobs = 0;
  double submitted_at = 0.0;
  double updated_at = 0.0;
  std::string detail;  ///< failure/cancel reason ("" otherwise)

  bool terminal() const {
    return state == "done" || state == "failed" || state == "cancelled";
  }

  io::json_value to_json() const;
  static campaign_record from_json(const io::json_value& v);
};

/// Tenant names are path components and header values: short lowercase
/// slugs only.
bool valid_tenant(const std::string& tenant);

/// Thread-safe registry over one data directory.
class campaign_registry {
 public:
  struct options {
    std::string data_dir = "boson_service";
    std::size_t tenant_quota = 8;  ///< max queued+running campaigns per tenant
  };

  /// Creates `data_dir` if needed, opens (creating/migrating if needed) the
  /// `registry/` segment store, and folds it (latest record per id wins), so
  /// restarts resume the ledger.
  explicit campaign_registry(options opts);
  ~campaign_registry();

  /// Register a campaign: assign the next id, create the tenant/id campaign
  /// directory, persist the canonical campaign.json inside it, and append
  /// the queued record. Throws `bad_argument` for an invalid tenant and
  /// `quota_error` at the tenant's quota.
  campaign_record submit(const std::string& tenant,
                         const runtime::campaign_spec& spec, double now);

  /// nullopt when the tenant has no campaign `id` (ids are not guessable
  /// across tenants: looking up another tenant's id misses).
  std::optional<campaign_record> find(const std::string& tenant,
                                      const std::string& id) const;

  /// This tenant's campaigns in submit order.
  std::vector<campaign_record> list(const std::string& tenant) const;

  /// Every campaign, all tenants, in submit order (runner pickup, metrics).
  std::vector<campaign_record> all() const;

  /// True when the tenant submitted at least one campaign.
  bool known_tenant(const std::string& tenant) const;

  /// Move a campaign to `state` (appending the ledger record). Returns the
  /// updated record; throws `bad_argument` when the campaign is unknown.
  campaign_record set_state(const std::string& tenant, const std::string& id,
                            const std::string& state, double now,
                            const std::string& detail = "");

  /// Atomic cross-process queued→running flip: under the store's exclusive
  /// lock, re-sync and claim the campaign only if it is still "queued".
  /// Returns the running record on success, nullopt when another process
  /// (or a cancel) got there first.
  std::optional<campaign_record> try_claim(const std::string& tenant,
                                           const std::string& id, double now);

  /// Retention: journal a "deleted" tombstone for the campaign. The record
  /// disappears from every query (its id is never reused — the tombstone
  /// keeps id accounting monotone); the caller owns removing the campaign
  /// directory. Throws `bad_argument` when the campaign is unknown.
  campaign_record remove(const std::string& tenant, const std::string& id,
                         double now);

  /// queued+running campaigns of `tenant` (the quota gauge).
  std::size_t active_count(const std::string& tenant) const;

  /// Oldest queued campaign across every tenant (global FIFO), if any.
  std::optional<campaign_record> oldest_queued() const;

  const std::string& data_dir() const { return options_.data_dir; }
  std::size_t tenant_quota() const { return options_.tenant_quota; }

 private:
  /// Fold ledger lines appended (by any process) since the last sync into
  /// `records_`. Called with `mutex_` held before every read and, under the
  /// store's exclusive lock, before every mutation.
  void sync_locked() const;
  void append_locked(const campaign_record& record) const;
  const campaign_record* find_locked(const std::string& tenant,
                                     const std::string& id) const;

  mutable std::mutex mutex_;
  options options_;
  // The fold state is a cache over the shared ledger, refreshed by
  // const readers — hence mutable.
  mutable std::vector<campaign_record> records_;        ///< submit (id) order
  mutable std::map<std::string, std::size_t> index_;    ///< id -> records_ slot
  mutable std::size_t next_id_ = 1;
  mutable std::uint64_t cursor_ = 0;  ///< ledger position folded so far
  mutable std::unique_ptr<store::segment_log> log_;
};

}  // namespace boson::service
