#pragma once

#include <cstddef>

#include "common/error.h"

namespace boson::opt {

/// Piecewise-linear scalar schedule: holds `start_value` until
/// `ramp_begin`, ramps linearly to `end_value` at `ramp_end`, then holds.
/// Drives the projection sharpness beta and the subspace-relaxation weight p.
class linear_schedule {
 public:
  linear_schedule(double start_value, double end_value, std::size_t ramp_begin,
                  std::size_t ramp_end)
      : start_(start_value), end_(end_value), begin_(ramp_begin), finish_(ramp_end) {
    require(ramp_end >= ramp_begin, "linear_schedule: ramp_end < ramp_begin");
  }

  /// Constant schedule.
  explicit linear_schedule(double value) : linear_schedule(value, value, 0, 0) {}

  double at(std::size_t iteration) const {
    if (iteration <= begin_ || finish_ == begin_) return start_;
    if (iteration >= finish_) return end_;
    const double t = static_cast<double>(iteration - begin_) /
                     static_cast<double>(finish_ - begin_);
    return start_ + t * (end_ - start_);
  }

 private:
  double start_;
  double end_;
  std::size_t begin_;
  std::size_t finish_;
};

}  // namespace boson::opt
