// boson_serve — campaign-as-a-service daemon: the boson::service control
// plane (campaign registry + in-process scheduler runners) mounted on the
// boson::net HTTP server. See docs/SERVICE.md for the endpoint reference.
//
//   boson_serve [--data <dir>] [--host <ip>] [--port <n>] [--port-file <path>]
//               [--threads N] [--runners N] [--quota N] [--workers N]
//               [--lease-ttl <s>] [--read-timeout <s>] [--write-timeout <s>]
//               [--max-body-kb N] [--no-artifacts] [--segment-bytes N]
//               [--segment-records N] [--compact-every N]
//
// The process serves until SIGINT/SIGTERM, then shuts down cleanly: the
// listener closes, in-flight requests finish, running campaigns are
// cancelled at their next checkpoint boundary and *requeued* (journals make
// the resume exact), and every thread joins before exit. `--port 0` (the
// default) binds an ephemeral port; `--port-file` writes the resolved port
// for scripts that need to find the server (the CI smoke test does).
//
// External workers are first-class: `boson_cli campaign resume
// <data>/<tenant>/<id>` attaches to a service-owned campaign directory and
// claims jobs through the same journal leases the in-process runners use.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/log.h"
#include "net/http_server.h"
#include "obs/metrics.h"
#include "service/service.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

int usage(std::FILE* out) {
  std::fprintf(out,
               "boson_serve — campaign-as-a-service daemon (HTTP+JSON control plane)\n"
               "\n"
               "usage:\n"
               "  boson_serve [--data <dir>] [--host <ip>] [--port <n>]\n"
               "              [--port-file <path>] [--threads N] [--runners N]\n"
               "              [--quota N] [--workers N] [--lease-ttl <s>]\n"
               "              [--read-timeout <s>] [--write-timeout <s>]\n"
               "              [--max-body-kb N] [--no-artifacts]\n"
               "              [--segment-bytes N] [--segment-records N]\n"
               "              [--compact-every N]\n"
               "\n"
               "--data         data root: per-tenant campaign directories + registry\n"
               "               (default: boson_service)\n"
               "--host/--port  bind address (default 127.0.0.1:0 — ephemeral port)\n"
               "--port-file    write the resolved port to this file after binding\n"
               "--threads      HTTP worker threads (default 4)\n"
               "--runners      campaigns executed concurrently in-process (default 2)\n"
               "--quota        max queued+running campaigns per tenant (default 8)\n"
               "--workers      per-campaign scheduler worker threads (default: spec's)\n"
               "--lease-ttl    lease TTL override in seconds (default: spec's)\n"
               "--read-timeout seconds one socket read may block (default 35;\n"
               "               keep above the events long-poll cap of 30)\n"
               "--write-timeout seconds one socket send may block before the\n"
               "               connection drops (default 10; 0 disables) — slow\n"
               "               event-stream consumers resume from X-Boson-Cursor\n"
               "--max-body-kb  request body ceiling in KiB (default 8192)\n"
               "--no-artifacts skip per-job artifact files (journal/results only)\n"
               "--segment-bytes   segmented journal: rotate at N bytes (0: legacy\n"
               "                  single-file journal — the default)\n"
               "--segment-records segmented journal: rotate at N records\n"
               "--compact-every   segmented journal: compact once N sealed\n"
               "                  segments accumulate\n"
               "\n"
               "With a tenants.json ({\"tenant\": \"token\"}) in the data root,\n"
               "requests must carry Authorization: Bearer <token>.\n");
  return out == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace boson;

  if (env_string("BOSON_LOG", "").empty()) set_log_level(log_level::info);

  service::service_options service_options;
  net::http_server_options server_options;
  server_options.read_timeout = 35.0;  // events long-poll waits up to 30 s
  server_options.write_timeout = 10.0; // drop consumers that stop reading
  std::string port_file;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "boson_serve: %s needs a value\n", args[i].c_str());
        std::exit(2);
      }
      return args[++i];
    };
    try {
      if (args[i] == "--help" || args[i] == "-h") return usage(stdout);
      else if (args[i] == "--data") service_options.data_dir = value();
      else if (args[i] == "--host") server_options.host = value();
      else if (args[i] == "--port")
        server_options.port = static_cast<std::uint16_t>(std::stoul(value()));
      else if (args[i] == "--port-file") port_file = value();
      else if (args[i] == "--threads")
        server_options.threads = static_cast<std::size_t>(std::stoul(value()));
      else if (args[i] == "--runners")
        service_options.runners = static_cast<std::size_t>(std::stoul(value()));
      else if (args[i] == "--quota")
        service_options.tenant_quota = static_cast<std::size_t>(std::stoul(value()));
      else if (args[i] == "--workers")
        service_options.workers = static_cast<std::size_t>(std::stoul(value()));
      else if (args[i] == "--lease-ttl") service_options.lease_ttl = std::stod(value());
      else if (args[i] == "--read-timeout")
        server_options.read_timeout = std::stod(value());
      else if (args[i] == "--write-timeout")
        server_options.write_timeout = std::stod(value());
      else if (args[i] == "--segment-bytes")
        service_options.segment_bytes = static_cast<std::size_t>(std::stoul(value()));
      else if (args[i] == "--segment-records")
        service_options.segment_records = static_cast<std::size_t>(std::stoul(value()));
      else if (args[i] == "--compact-every")
        service_options.compact_segments = static_cast<std::size_t>(std::stoul(value()));
      else if (args[i] == "--max-body-kb")
        server_options.limits.max_body_bytes = std::stoul(value()) * 1024;
      else if (args[i] == "--no-artifacts") service_options.write_artifacts = false;
      else {
        std::fprintf(stderr, "boson_serve: unknown option '%s'\n", args[i].c_str());
        return usage(stderr);
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "boson_serve: bad value for '%s'\n", args[i].c_str());
      return 2;
    }
  }

  try {
    service::campaign_service service(service_options);
    net::http_server server(server_options, service.handler());
    service.start();
    server.start();

    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << server.port() << "\n";
      out.flush();
      if (!out) {
        std::fprintf(stderr, "boson_serve: cannot write %s\n", port_file.c_str());
        return 1;
      }
    }
    std::printf("boson_serve: listening on %s (data: %s)\n",
                server.base_url().c_str(), service.data_dir().c_str());
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (g_signal == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

    log_info("boson_serve: signal ", static_cast<int>(g_signal), ", shutting down");
    service.drain(); // release /events long-polls held by HTTP workers...
    server.stop();   // ...so joining them is prompt; in-flight requests finish
    service.stop();  // cancel + requeue running campaigns, join runners
    log_info("boson_serve: metrics digest: ",
             obs::registry::global().digest());
    std::printf("boson_serve: clean shutdown\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "boson_serve: %s\n", e.what());
    return 1;
  }
}
