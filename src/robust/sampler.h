/// \file sampler.h
/// Variation-corner sampling strategies (Fig. 6(a)): from nominal-only and
/// exhaustive 3^N sweeps to BOSON-1's axial corners plus a one-step
/// gradient-ascent worst-case corner (the SAM-inspired move of Section
/// III-E). The sampler decides which corners each optimization iteration
/// simulates; the cost model feeds the paper's runtime comparisons.

#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "robust/corners.h"

namespace boson::robust {

/// Corner-sampling strategies compared in the paper's Fig. 6(a), plus the
/// exhaustive sweep used by prior art (InvFabCor) and by the Table II
/// ablation.
enum class sampling_strategy {
  nominal_only,       ///< no variation awareness
  axial_single,       ///< one-sided axial corners: O(N)
  axial_double,       ///< double-sided axial corners: O(2N)
  exhaustive,         ///< full 3^N corner sweep
  axial_plus_random,  ///< axial + random extra samples (cost-matched control)
  axial_plus_worst,   ///< BOSON-1: axial + one-step gradient-ascent worst case
};

const char* to_string(sampling_strategy s);

/// Gradient information harvested from the previous iteration's nominal
/// corner, used to build the worst-case corner by one-step ascent (the
/// SAM-inspired move of Section III-E).
struct worst_case_info {
  dvec d_xi;                ///< dLoss/dxi at the nominal corner
  double d_temperature = 0.0;
};

/// Produces the set of variation corners simulated in one optimization
/// iteration.
class corner_sampler {
 public:
  corner_sampler(sampling_strategy strategy, variation_space space);

  sampling_strategy strategy() const { return strategy_; }
  const variation_space& space() const { return space_; }

  /// Corner set for this iteration. `worst` supplies ascent directions when
  /// the strategy uses them (ignored otherwise; when absent at iteration 0
  /// the worst slot falls back to the nominal corner).
  std::vector<variation_corner> sample(rng& r,
                                       const std::optional<worst_case_info>& worst) const;

  /// Number of simulated corners per iteration (cost model for benches).
  std::size_t corners_per_iteration() const;

 private:
  sampling_strategy strategy_;
  variation_space space_;
};

/// Build the worst-case corner by one-step gradient ascent on temperature
/// and the EOLE coefficients.
variation_corner make_worst_corner(const worst_case_info& info, const variation_space& space);

/// Draw one random corner uniformly from the variation space (litho corner
/// uniform, temperature uniform, xi standard normal). Shared by the sampler
/// and the Monte-Carlo evaluator.
variation_corner random_corner(rng& r, const variation_space& space, const std::string& name);

}  // namespace boson::robust
