/// \file spec.h
/// The declarative experiment description: an `experiment_spec` names a
/// device and a method from the registries, carries the optimization /
/// fabrication-model overrides, and lists an evaluation plan (post-fab Monte
/// Carlo, wavelength sweep, lithography process window). Specs round-trip
/// through JSON (`to_json` / `from_json`) with strict validation — unknown
/// devices/methods/keys and out-of-range values produce precise errors — so
/// whole experiment matrices can be stored, diffed, and batch-executed as
/// data.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/recipe.h"
#include "fab/eole.h"
#include "fab/litho.h"
#include "io/json.h"

namespace boson::api {

/// One step of an experiment's evaluation plan.
struct eval_step {
  enum class step_kind {
    postfab_monte_carlo,  ///< Section IV-B protocol: random fab corners
    wavelength_sweep,     ///< spectral response at the nominal corner
    process_window,       ///< (defocus, dose) lithography scan
  };

  step_kind kind = step_kind::postfab_monte_carlo;

  std::size_t samples = 20;  ///< postfab_monte_carlo draws
  dvec wavelengths_um;       ///< wavelength_sweep operating points
  dvec defocus_um;           ///< process_window focus-error axis
  dvec dose;                 ///< process_window dose axis

  static eval_step monte_carlo(std::size_t samples);
  static eval_step sweep(dvec wavelengths_um);
  static eval_step window(dvec defocus_um, dvec dose);
};

const char* to_string(eval_step::step_kind kind);

/// Declarative description of one experiment: which device, which method,
/// how to run the optimization, and how to evaluate the result. Field
/// defaults match `core::experiment_config`; `BOSON_BENCH_SCALE` still
/// scales iteration/sample counts at execution time.
struct experiment_spec {
  std::string name;                ///< artifact label; "<device>_<method>" when empty
  std::string device = "bend";     ///< device-registry key
  std::string method = "boson";    ///< method-registry key (a plain label when
                                   ///< an inline `recipe` is set)
  std::string objective = "device_default";  ///< objective-registry key
  double resolution = 0.05;        ///< grid pitch [um]

  /// Inline method recipe. When set it wins over the `method` registry key
  /// (`method` then only labels the experiment), so a spec can describe a
  /// never-registered hybrid purely as data — the JSON form is the spec's
  /// `"recipe": {...}` object.
  std::optional<core::method_recipe> recipe;

  // Optimization-run settings.
  std::size_t iterations = 50;
  std::size_t relax_epochs = 20;
  double learning_rate = 0.05;
  std::uint64_t seed = 7;
  std::string backend = "default";  ///< "default" follows BOSON_BACKEND, else
                                    ///< "banded" | "bicgstab" | "gmres"
  bool use_operator_cache = true;
  bool record_trajectory = true;

  // Fabrication-model settings (the JSON schema exposes the knobs coarse
  // smoke configurations need; the remaining fields keep their defaults).
  fab::litho_settings litho;
  fab::eole_settings eole;

  /// Evaluation plan executed after the optimization, in order.
  std::vector<eval_step> evaluation{eval_step::monte_carlo(20)};

  /// `name`, or the derived "<device>_<method>" label when unset.
  std::string display_name() const;

  /// Serialize to the canonical JSON form (all fields explicit, the
  /// display name resolved).
  io::json_value to_json() const;

  /// Parse and validate a spec. Throws `bad_argument` naming the offending
  /// key/value ("experiment_spec: unknown key 'foo' in run", unknown device
  /// listing the registered names, out-of-range values, wrong JSON types).
  static experiment_spec from_json(const io::json_value& v);
};

/// Registry and range validation shared by `from_json` and the session
/// (programmatically-built specs get the same precise errors).
void validate(const experiment_spec& spec);

/// The method recipe a spec executes: the inline `recipe` when present,
/// otherwise the registry entry `method` names. Does not validate ranges.
core::method_recipe resolved_recipe(const experiment_spec& spec);

/// Serialize a recipe to its canonical JSON form (all policy fields
/// explicit; `density_blur` is "mfs" or the cell radius).
io::json_value recipe_to_json(const core::method_recipe& recipe);

/// Parse and validate a recipe object. Throws `bad_argument` naming the
/// offending key/value under `path` (e.g. "recipe.corners"); policy-key
/// errors carry a did-you-mean suggestion.
core::method_recipe recipe_from_json(const io::json_value& v,
                                     const std::string& path = "recipe");

/// Load one spec (JSON object) or a batch (JSON array of objects) from a
/// file.
std::vector<experiment_spec> load_specs(const std::string& path);

}  // namespace boson::api
