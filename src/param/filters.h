#pragma once

#include <cmath>
#include <cstddef>

#include "common/array2d.h"
#include "common/types.h"

namespace boson::param {

/// Logistic sigmoid.
inline double sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// d sigmoid / dx expressed through the output value s = sigmoid(x).
inline double sigmoid_derivative_from_value(double s) { return s * (1.0 - s); }

/// Normalized separable Gaussian blur with zero-flux edge handling:
/// out = (k * in) / (k * 1). Symmetric kernel, so the exact adjoint is
/// adj(g) = k * (g / w) with the same weights w = k * 1.
///
/// This is the classical minimum-feature-size control ("-M" in the paper's
/// baselines): it removes features smaller than roughly the blur radius.
class gaussian_blur {
 public:
  /// `radius_cells` is the Gaussian sigma measured in design cells; a value
  /// <= 0 makes the filter an exact identity.
  gaussian_blur(std::size_t nx, std::size_t ny, double radius_cells);

  bool is_identity() const { return half_ == 0; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }

  void forward(const array2d<double>& in, array2d<double>& out) const;
  void adjoint(const array2d<double>& g, array2d<double>& out) const;

 private:
  void convolve(const array2d<double>& in, array2d<double>& out) const;

  std::size_t nx_;
  std::size_t ny_;
  std::size_t half_ = 0;
  dvec kernel_;              // 1-D taps, size 2*half_+1, sums to 1
  array2d<double> weights_;  // k * 1 (normalization map)
};

/// Smoothed Heaviside projection (Wang et al. style) pushing x in [0,1]
/// toward {0,1} with sharpness beta around threshold eta.
struct tanh_projection {
  double beta = 8.0;
  double eta = 0.5;

  double forward(double x) const {
    const double a = std::tanh(beta * eta);
    const double b = std::tanh(beta * (x - eta));
    const double c = std::tanh(beta * (1.0 - eta));
    return (a + b) / (a + c);
  }

  double derivative(double x) const {
    const double a = std::tanh(beta * eta);
    const double c = std::tanh(beta * (1.0 - eta));
    const double t = std::tanh(beta * (x - eta));
    return beta * (1.0 - t * t) / (a + c);
  }
};

}  // namespace boson::param
