#include "modes/slab.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "linalg/eig_sym.h"

namespace boson::modes {

std::vector<slab_mode> solve_slab_modes(const dvec& eps, double d, double k0,
                                        std::size_t max_modes) {
  require(eps.size() >= 8, "solve_slab_modes: cross-section too short");
  require(d > 0.0 && k0 > 0.0, "solve_slab_modes: invalid spacing or k0");
  const std::size_t n = eps.size();

  dvec diag(n);
  dvec sub(n, 0.0);
  const double inv_d2 = 1.0 / (d * d);
  for (std::size_t j = 0; j < n; ++j) diag[j] = -2.0 * inv_d2 + k0 * k0 * eps[j];
  for (std::size_t j = 1; j < n; ++j) sub[j] = inv_d2;

  la::eig_result<double> eig = la::tridiag_eig(std::move(diag), std::move(sub));

  // Cladding permittivity: the ends of the line. Guided modes decay there.
  const double eps_clad = std::max(eps.front(), eps.back());
  const double cutoff = k0 * k0 * eps_clad;

  std::vector<slab_mode> modes;
  // Eigenvalues ascending; guided modes are the largest beta^2 above cutoff.
  for (std::size_t jj = eig.values.size(); jj-- > 0 && modes.size() < max_modes;) {
    const double beta2 = eig.values[jj];
    if (beta2 <= cutoff) break;
    slab_mode m;
    m.beta = std::sqrt(beta2);
    m.neff = m.beta / k0;
    m.profile.resize(n);
    for (std::size_t i = 0; i < n; ++i) m.profile[i] = eig.vectors(i, jj);
    // Normalize: sum(profile^2) * d == 1, dominant lobe positive.
    double norm2 = 0.0;
    for (const double v : m.profile) norm2 += v * v;
    double scale = 1.0 / std::sqrt(norm2 * d);
    double peak = 0.0;
    std::size_t peak_idx = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (std::abs(m.profile[i]) > peak) {
        peak = std::abs(m.profile[i]);
        peak_idx = i;
      }
    }
    if (m.profile[peak_idx] < 0.0) scale = -scale;
    for (auto& v : m.profile) v *= scale;
    m.order = static_cast<int>(modes.size()) + 1;
    modes.push_back(std::move(m));
  }
  return modes;
}

double mode_power_factor(const slab_mode& mode, double k0, double normal_spacing) {
  require(k0 > 0.0, "mode_power_factor: invalid k0");
  double dispersion = 1.0;
  if (normal_spacing > 0.0) {
    const double bd = mode.beta * normal_spacing;
    require(bd < 2.0, "mode_power_factor: mode not resolvable at this spacing");
    dispersion = std::sqrt(1.0 - 0.25 * bd * bd);
  }
  return dispersion * mode.beta / (2.0 * k0);
}

}  // namespace boson::modes
