#pragma once

#include <cstdint>
#include <cstddef>

#include "core/design_problem.h"

namespace boson::core {

/// Options for the InvFabCor baseline's second stage: inverse lithography
/// mask optimization that matches the post-fabrication pattern to a freely
/// optimized target design.
struct mask_correction_options {
  std::size_t iterations = 80;
  double learning_rate = 0.2;
  std::size_t litho_corners = 1;  ///< '-1' matches nominal only, '-3' all corners
  double etch_beta = 30.0;        ///< soft-etch sharpness for the matching loss
};

/// Result of the mask optimization.
struct mask_correction_result {
  array2d<double> mask;      ///< corrected mask on the design grid, in [0, 1]
  double initial_mismatch = 0.0;  ///< mean squared pattern error before
  double final_mismatch = 0.0;    ///< ... and after optimization
};

/// Optimize a mask m so that etch(litho_c(m)) ~= target for the selected
/// lithography corners (L2 pattern loss, nominal etch threshold). This is the
/// classical two-stage flow the paper compares against: the free design is
/// produced first and the mask is corrected afterwards, so any residual
/// mismatch becomes a post-fabrication performance gap.
mask_correction_result correct_mask(const design_problem& problem,
                                    const array2d<double>& target,
                                    const mask_correction_options& options);

}  // namespace boson::core
