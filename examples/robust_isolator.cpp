// Robust optical-isolator design: the paper's most challenging benchmark.
//
// Forward TM1 light must convert to TM3 with high efficiency while backward
// TM1 light is rejected; the figure of merit is the isolation contrast
// E_bwd / E_fwd (lower is better). This example runs the full BOSON-1 recipe
// and prints the optimization trajectory (the series behind the paper's
// Fig. 5a), then stress-tests the final design with a post-fabrication
// Monte Carlo.

#include <cstdio>

#include "core/methods.h"
#include "io/csv.h"
#include "io/pgm.h"

int main() {
  using namespace boson;

  dev::device_spec device = dev::make_isolator();
  core::experiment_config cfg = core::default_config();

  std::printf("Running BOSON-1 on the optical isolator (%zu iterations)...\n",
              cfg.scaled_iterations());
  const core::method_result r = core::run_method(device, core::method_id::boson, cfg);

  std::printf("\n%-5s %-10s %-12s %-12s %-12s\n", "iter", "loss", "fwd T", "bwd T",
              "contrast");
  io::csv_writer csv("robust_isolator_trajectory.csv",
                     {"iteration", "loss", "fwd_transmission", "bwd_transmission",
                      "contrast"});
  for (const auto& rec : r.run.trajectory) {
    csv.write_row(std::to_string(rec.iteration),
                  {rec.loss, rec.metrics.at("fwd_transmission"),
                   rec.metrics.at("bwd_transmission"), rec.metrics.at("contrast")});
    if (rec.iteration % 5 == 0 || rec.iteration + 1 == r.run.trajectory.size())
      std::printf("%-5zu %-10.4f %-12.4f %-12.5f %-12.5f\n", rec.iteration, rec.loss,
                  rec.metrics.at("fwd_transmission"), rec.metrics.at("bwd_transmission"),
                  rec.metrics.at("contrast"));
  }

  std::printf("\nPost-fabrication Monte Carlo (%zu samples):\n", r.postfab.samples);
  std::printf("  contrast        : %.4g (mean)  [%.4g, %.4g]\n", r.postfab.fom_mean,
              r.postfab.fom_min, r.postfab.fom_max);
  std::printf("  fwd transmission: %.4f\n",
              r.postfab.metric_means.at("fwd_transmission"));
  std::printf("  bwd transmission: %.5f\n",
              r.postfab.metric_means.at("bwd_transmission"));

  io::write_pgm("robust_isolator_mask.pgm", r.mask);
  std::printf("\nTrajectory: robust_isolator_trajectory.csv; mask: robust_isolator_mask.pgm\n");
  return 0;
}
