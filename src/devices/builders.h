/// \file builders.h
/// Builders for the paper's three photonic benchmarks (Section IV-A): the
/// 90-degree bend, the waveguide crossing, and the magneto-optic isolator —
/// each a `device_spec` with geometry, ports, monitors, and objective at
/// lambda = 1.55 um on a configurable grid pitch.

#pragma once

#include "devices/spec.h"

namespace boson::dev {

/// The three photonic benchmarks evaluated in the paper (Section IV-A).
/// `resolution` is the grid pitch in um (default 50 nm); coarser values are
/// used by fast tests. All builders target lambda = 1.55 um, silicon core /
/// air cladding.
enum class device_kind { bend, crossing, isolator };

const char* to_string(device_kind kind);

/// 90-degree waveguide bend: light enters from the left and must exit
/// through the top port. FoM: TM1 transmission efficiency (higher better).
device_spec make_bend(double resolution = 0.05);

/// Waveguide crossing: light must traverse the intersection with minimal
/// crosstalk into the vertical arms. FoM: transmission (higher better).
device_spec make_crossing(double resolution = 0.05);

/// Optical isolator benchmark: forward TM1 -> TM3 mode conversion with high
/// efficiency; backward TM1 must not return to TM1. FoM: isolation contrast
/// E_bwd / E_fwd (lower better).
device_spec make_isolator(double resolution = 0.05);

device_spec make_device(device_kind kind, double resolution = 0.05);

}  // namespace boson::dev
