#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/log.h"
#include "obs/metrics.h"
#include "runtime/journal.h"
#include "runtime/lease.h"
#include "runtime/result_store.h"

namespace boson::service {

namespace {

/// Registry key of a campaign ("tenant/id") — the active_/claimed_ map key.
std::string key_of(const std::string& tenant, const std::string& id) {
  return tenant + "/" + id;
}

}  // namespace

campaign_service::campaign_service(service_options options)
    : options_(std::move(options)),
      registry_({options_.data_dir, options_.tenant_quota}) {
  options_.runners = std::max<std::size_t>(1, options_.runners);
  require(options_.poll_interval > 0.0, "campaign_service: poll interval must be positive");

  // Bearer-token auth is on when a tenants.json sits in the data root:
  // a flat {"tenant": "token"} object.
  const std::string tokens_path =
      (std::filesystem::path(options_.data_dir) / "tenants.json").string();
  std::error_code ec;
  if (std::filesystem::exists(tokens_path, ec)) {
    const io::json_value doc = io::json_value::parse_file(tokens_path);
    for (const auto& [tenant, token] : doc.members()) {
      require(valid_tenant(tenant),
              "campaign_service: invalid tenant '" + tenant + "' in " + tokens_path);
      require(!token.as_string().empty(),
              "campaign_service: empty token for tenant '" + tenant + "' in " +
                  tokens_path);
      tenant_tokens_[tenant] = token.as_string();
    }
    log_info("campaign_service: bearer-token auth enabled (", tenant_tokens_.size(),
             " tenants)");
  }
}

campaign_service::~campaign_service() { stop(); }

double campaign_service::now() const {
  return options_.clock ? options_.clock() : runtime::wall_clock_seconds();
}

void campaign_service::start() {
  require(!running_.load(), "campaign_service: already started");
  stopping_.store(false);
  draining_.store(false);

  // Campaigns a previous process left mid-run have no owner anymore; requeue
  // them so this process's runners resume them. The journal makes the resume
  // exact — completed jobs are skipped, leases of the dead process expire.
  for (const campaign_record& r : registry_.all())
    if (r.state == "running")
      registry_.set_state(r.tenant, r.id, "queued", now(), "requeued on restart");

  running_.store(true);
  runners_.reserve(options_.runners);
  for (std::size_t i = 0; i < options_.runners; ++i)
    runners_.emplace_back(&campaign_service::runner_loop, this);
  log_info("campaign_service: started (", options_.runners, " runners, data: ",
           registry_.data_dir(), ")");
}

void campaign_service::drain() {
  draining_.store(true);
  wake_cv_.notify_all();
}

void campaign_service::stop() {
  drain();
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    for (auto& [key, sched] : active_) sched->cancel();
  }
  wake_cv_.notify_all();
  for (std::thread& t : runners_)
    if (t.joinable()) t.join();
  runners_.clear();
  log_info("campaign_service: stopped");
}

void campaign_service::runner_loop() {
  while (!stopping_.load()) {
    std::optional<campaign_record> next;
    {
      const std::lock_guard<std::mutex> lock(active_mutex_);
      for (const campaign_record& r : registry_.all()) {
        if (r.state != "queued" || claimed_.count(key_of(r.tenant, r.id))) continue;
        claimed_[key_of(r.tenant, r.id)] = true;
        next = r;
        break;
      }
    }
    if (!next) {
      // Plain timed wait: submit()'s notify shortcuts the sleep, and the
      // loop re-checks the queue either way.
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait_for(lock, std::chrono::duration<double>(options_.poll_interval));
      continue;
    }
    try {
      run_campaign(*next);
    } catch (const std::exception& e) {
      // A campaign that cannot even start (spec deleted from disk, ...) is
      // failed, not fatal: the runner must survive to serve the next one.
      log_warn("campaign_service: campaign ", next->id, " aborted: ", e.what());
      try {
        registry_.set_state(next->tenant, next->id, "failed", now(), e.what());
      } catch (const std::exception&) {
      }
    }
    const std::lock_guard<std::mutex> lock(active_mutex_);
    claimed_.erase(key_of(next->tenant, next->id));
  }
}

void campaign_service::run_campaign(const campaign_record& record) {
  const std::string key = key_of(record.tenant, record.id);
  const runtime::campaign_spec spec =
      runtime::campaign_spec::load(runtime::campaign_spec_path(record.dir));

  runtime::scheduler_options so;
  so.campaign_dir = record.dir;
  so.worker_id = "svc-" + record.id;
  so.workers = options_.workers;
  so.lease_ttl = options_.lease_ttl;
  so.write_artifacts = options_.write_artifacts;
  so.executor = options_.executor;
  so.clock = options_.clock;
  so.segment_bytes = options_.segment_bytes;
  so.segment_records = options_.segment_records;
  so.compact_segments = options_.compact_segments;
  runtime::scheduler scheduler(spec, std::move(so));

  {
    // Claim-to-running flip and cancel() share active_mutex_, so a cancel
    // that lands between them either sees "queued" (and wins: we bail here)
    // or finds the scheduler registered (and cancels it cooperatively). The
    // flip itself is try_claim — atomic under the registry store's exclusive
    // lock, so of several service processes sharing one data root exactly
    // one wins each queued campaign.
    const std::lock_guard<std::mutex> lock(active_mutex_);
    if (!registry_.try_claim(record.tenant, record.id, now()))
      return;  // cancelled while claimed, or another process's runner won
    active_[key] = &scheduler;
  }
  log_info("campaign_service: running ", key, " ('", spec.name, "', ",
           spec.job_count(), " jobs)");

  std::string final_state;
  std::string detail;
  try {
    run_registered(record, scheduler, final_state, detail);
  } catch (...) {
    // The scheduler lives on this stack frame: a throw anywhere after the
    // registration above (corrupt journal in scheduler.run() or the replay
    // fold, ...) must unregister it, or stop()/cancel() would dereference a
    // dangling pointer. The runner's catch handler records the failure.
    const std::lock_guard<std::mutex> lock(active_mutex_);
    active_.erase(key);
    user_cancelled_.erase(key);
    throw;
  }

  {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    active_.erase(key);
    // A shutdown-cancelled campaign is unfinished business, not an outcome:
    // requeue it so the next start() resumes from the journal.
    if (final_state == "cancelled" && stopping_.load() &&
        !user_cancelled_.count(key))
      final_state = "queued";
    user_cancelled_.erase(key);
    registry_.set_state(record.tenant, record.id, final_state, now(), detail);
  }
  log_info("campaign_service: ", key, " -> ", final_state,
           detail.empty() ? "" : " (" + detail + ")");
}

void campaign_service::run_registered(const campaign_record& record,
                                      runtime::scheduler& scheduler,
                                      std::string& final_state,
                                      std::string& detail) {
  while (final_state.empty()) {
    const runtime::scheduler_report report = scheduler.run();
    {
      const std::lock_guard<std::mutex> lock(metrics_mutex_);
      jobs_completed_ += report.completed;
      run_seconds_ += report.wall_seconds;
    }
    if (scheduler.cancel_requested()) {
      final_state = "cancelled";
      detail = stopping_.load() ? "service shutdown" : "cancelled by request";
      break;
    }
    if (report.failed > 0 || !report.errors.empty()) {
      final_state = "failed";
      detail = report.errors.empty() ? "jobs failed" : report.errors.front();
      break;
    }
    if (report.left_leased == 0) {
      // Nothing pending, nothing leased elsewhere: every job this pass could
      // see is terminal. Confirm against the journal fold (external workers
      // may have finished jobs we never touched).
      const runtime::lease_table leases = runtime::lease_table::resolve(
          runtime::journal::replay(runtime::journal_path(record.dir)));
      bool all_done = true;
      for (std::size_t i = 0; i < record.total_jobs && all_done; ++i)
        all_done = leases.done(i);
      if (all_done) {
        final_state = "done";
        break;
      }
    }
    // External lease workers hold live jobs (or a stale failed state needs a
    // fresh pass): wait a beat, then run another pass. Stop requests and
    // cancels arrive through scheduler.cancel(), which the pass observes.
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait_for(lock, std::chrono::duration<double>(options_.poll_interval),
                      [this, &scheduler] {
                        return stopping_.load() || scheduler.cancel_requested();
                      });
  }
}

// ------------------------------------------------------- control plane ----

campaign_record campaign_service::submit(const std::string& tenant,
                                         const runtime::campaign_spec& spec) {
  // Validate the whole expansion up front: a spec the scheduler would choke
  // on must be rejected at the door (400), not discovered by a runner.
  spec.expand();
  campaign_record record = registry_.submit(tenant, spec, now());
  wake_cv_.notify_all();
  log_info("campaign_service: submitted ", key_of(tenant, record.id), " ('",
           spec.name, "', ", record.total_jobs, " jobs)");
  return record;
}

std::vector<campaign_record> campaign_service::list(const std::string& tenant) const {
  return registry_.list(tenant);
}

campaign_record campaign_service::resolve(const std::string& tenant,
                                          const std::string& id) const {
  if (!valid_tenant(tenant))
    throw net::http_error(400, "invalid tenant '" + tenant +
                                   "' (lowercase [a-z0-9_-], at most 32 chars)");
  const std::optional<campaign_record> record = registry_.find(tenant, id);
  if (!record) {
    if (!registry_.known_tenant(tenant))
      throw net::http_error(404, "unknown tenant '" + tenant + "'");
    throw net::http_error(404, "tenant '" + tenant + "' has no campaign '" + id + "'");
  }
  return *record;
}

campaign_status campaign_service::status(const std::string& tenant,
                                         const std::string& id,
                                         bool include_jobs) const {
  const campaign_record record = resolve(tenant, id);
  const runtime::campaign_spec spec =
      runtime::campaign_spec::load(runtime::campaign_spec_path(record.dir));
  campaign_status s = read_campaign_status(spec, record.dir, now());
  s.id = record.id;
  s.tenant = record.tenant;
  s.service_state = record.state;
  if (!include_jobs) s.jobs.clear();
  return s;
}

event_page campaign_service::events(const std::string& tenant, const std::string& id,
                                    std::streamoff cursor, double max_wait) {
  const campaign_record record = resolve(tenant, id);
  const std::string path = runtime::journal_path(record.dir);

  event_page page;
  std::uint64_t at = static_cast<std::uint64_t>(cursor);
  page.lines = runtime::journal::raw_since(path, at, options_.event_page_lines);

  // Long-poll: wait (in poll_interval beats) for the journal to grow rather
  // than making clients hammer the endpoint. Terminal campaigns return
  // immediately — nothing will be appended.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(max_wait);
  while (page.lines.empty() && max_wait > 0.0 && !stopping_.load() &&
         !draining_.load() && std::chrono::steady_clock::now() < deadline) {
    const std::optional<campaign_record> current = registry_.find(tenant, id);
    if (!current || current->terminal()) break;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait_for(lock, std::chrono::duration<double>(options_.poll_interval));
    lock.unlock();
    page.lines = runtime::journal::raw_since(path, at, options_.event_page_lines);
  }
  page.next_cursor = static_cast<std::streamoff>(at);
  return page;
}

std::string campaign_service::report_text(const std::string& tenant,
                                          const std::string& id) const {
  const campaign_record record = resolve(tenant, id);
  const runtime::campaign_spec spec =
      runtime::campaign_spec::load(runtime::campaign_spec_path(record.dir));
  return runtime::render_report(spec, runtime::result_store::load(record.dir));
}

io::json_value campaign_service::report_json(const std::string& tenant,
                                             const std::string& id) const {
  const campaign_record record = resolve(tenant, id);
  const runtime::campaign_spec spec =
      runtime::campaign_spec::load(runtime::campaign_spec_path(record.dir));
  const std::vector<runtime::job_result_row> rows =
      runtime::result_store::load(record.dir);

  io::json_value v = io::json_value::object();
  v["id"] = record.id;
  v["name"] = spec.name;
  v["total_jobs"] = record.total_jobs;
  v["rows_stored"] = rows.size();
  io::json_value& arr = v["rows"] = io::json_value::array();
  for (const runtime::job_result_row& row : rows) arr.push_back(row.to_json());
  return v;
}

campaign_record campaign_service::cancel(const std::string& tenant,
                                         const std::string& id) {
  const campaign_record record = resolve(tenant, id);
  const std::string key = key_of(tenant, id);

  const std::lock_guard<std::mutex> lock(active_mutex_);
  const std::optional<campaign_record> current = registry_.find(tenant, id);
  if (!current) throw net::http_error(404, "campaign '" + id + "' disappeared");
  if (current->terminal())
    throw net::http_error(409, "campaign '" + id + "' is already " + current->state);

  const auto it = active_.find(key);
  if (it != active_.end()) {
    // Running in-process: cancel cooperatively; the runner records the
    // terminal state once the scheduler pass drains.
    user_cancelled_.insert(key);
    it->second->cancel();
    wake_cv_.notify_all();
    return *current;
  }
  // Queued (possibly claimed but not yet running — the runner re-checks the
  // state under this same mutex and backs off).
  (void)record;
  campaign_record updated =
      registry_.set_state(tenant, id, "cancelled", now(), "cancelled by request");
  wake_cv_.notify_all();
  return updated;
}

campaign_record campaign_service::remove(const std::string& tenant,
                                         const std::string& id) {
  resolve(tenant, id);  // 404 mapping
  const std::string key = key_of(tenant, id);

  campaign_record tombstone;
  {
    // Under active_mutex_ a runner cannot flip the campaign to running
    // between our terminal check and the tombstone append.
    const std::lock_guard<std::mutex> lock(active_mutex_);
    const std::optional<campaign_record> current = registry_.find(tenant, id);
    if (!current) throw net::http_error(404, "campaign '" + id + "' disappeared");
    if (!current->terminal() || active_.count(key) || claimed_.count(key))
      throw net::http_error(409, "campaign '" + id + "' is " + current->state +
                                     "; cancel it (and let it settle) before deleting");
    tombstone = registry_.remove(tenant, id, now());
  }

  // The tombstone is durable; reclaim the disk. A failure here (NFS
  // silliness, permissions) leaves an orphan directory, not a ghost
  // campaign — the registry already forgot it.
  std::error_code ec;
  std::filesystem::remove_all(tombstone.dir, ec);
  if (ec)
    log_warn("campaign_service: could not remove '", tombstone.dir,
             "': ", ec.message());
  log_info("campaign_service: deleted ", key);
  return tombstone;
}

std::size_t campaign_service::active_runs() const {
  const std::lock_guard<std::mutex> lock(active_mutex_);
  return active_.size();
}

service_metrics campaign_service::metrics() const {
  service_metrics m;
  const double t = now();
  for (const campaign_record& r : registry_.all()) {
    if (r.state == "queued") ++m.campaigns_queued;
    else if (r.state == "running") ++m.campaigns_running;
    else if (r.state == "done") ++m.campaigns_done;
    else if (r.state == "failed") ++m.campaigns_failed;
    else if (r.state == "cancelled") ++m.campaigns_cancelled;

    if (r.state == "running") {
      const runtime::lease_table leases = runtime::lease_table::resolve(
          runtime::journal::replay(runtime::journal_path(r.dir)));
      for (const auto& [job, view] : leases.jobs())
        if (view.state == runtime::lease_view::phase::leased && view.deadline > t)
          ++m.live_leases;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(metrics_mutex_);
    m.jobs_completed = jobs_completed_;
    m.run_seconds = run_seconds_;
  }
  // Control-plane request total: the sum over the per-endpoint ×
  // status-class counters the handler records into the obs registry.
  m.requests = static_cast<std::size_t>(
      obs::registry::global().counter_total("http.requests_total"));
  return m;
}

}  // namespace boson::service
