#include "core/methods.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/env.h"
#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/mask_correction.h"
#include "param/density.h"
#include "param/levelset.h"

namespace boson::core {

// ---------------------------------------------------------------- presets --

method_recipe preset_recipe(method_id id) {
  method_recipe r;  // defaults describe the plain level-set baseline ("LS")
  switch (id) {
    case method_id::density:
      // The classical density flow: per-pixel variables, moderate fixed
      // projection sharpness, final 0.5 thresholding. Without the modern
      // binarization ramp the converged design carries gray/fine structure —
      // the "numerically plausible, non-manufacturable" failure mode.
      r.label = "Density";
      r.parameterization = "density";
      r.beta_schedule = "fixed";
      break;
    case method_id::density_m:
      r.label = "Density-M";
      r.parameterization = "density";
      r.density_blur_mfs = true;
      r.beta_schedule = "fixed";
      break;
    case method_id::ls:
      r.label = "LS";
      break;
    case method_id::ls_m:
      r.label = "LS-M";
      r.mfs_blur = true;
      break;
    case method_id::invfabcor_1:
      r.label = "InvFabCor-1";
      r.mask_correction = "nominal";
      break;
    case method_id::invfabcor_3:
      r.label = "InvFabCor-3";
      r.mask_correction = "all_corners";
      break;
    case method_id::invfabcor_m_1:
      r.label = "InvFabCor-M-1";
      r.mfs_blur = true;
      r.mask_correction = "nominal";
      break;
    case method_id::invfabcor_m_3:
      r.label = "InvFabCor-M-3";
      r.mfs_blur = true;
      r.mask_correction = "all_corners";
      break;
    case method_id::invfabcor_m_3_eff:
      r.label = "InvFabCor-M-3-eff";
      r.mfs_blur = true;
      r.mask_correction = "all_corners";
      r.objective_override = "fwd_transmission";
      break;
    case method_id::ls_ed:
      r.label = "LS-ED";
      r.mfs_blur = true;  // geometry-corner flows pair with MFS control
      r.corners = "erosion_dilation";
      break;
    case method_id::boson:
      r.label = "BOSON-1";
      r.corners = "adaptive";
      r.relaxation = "linear";
      r.reshaping = "dense";
      break;
    case method_id::boson_no_reshape:
      r.label = "BOSON-1 (- landscape reshaping)";
      r.corners = "adaptive";
      r.relaxation = "linear";
      break;
    case method_id::boson_no_relax:
      r.label = "BOSON-1 (- subspace relax)";
      r.corners = "adaptive";
      r.reshaping = "dense";
      break;
    case method_id::boson_exhaustive:
      r.label = "BOSON-1 (exhaustive sample)";
      r.corners = "exhaustive";
      r.relaxation = "linear";
      r.reshaping = "dense";
      break;
    case method_id::boson_random_init:
      r.label = "BOSON-1 (random init)";
      r.corners = "adaptive";
      r.relaxation = "linear";
      r.reshaping = "dense";
      r.initialization = "random";
      break;
  }
  return r;
}

const std::vector<method_id>& all_method_ids() {
  static const std::vector<method_id> ids = {
      method_id::density,        method_id::density_m,
      method_id::ls,             method_id::ls_m,
      method_id::invfabcor_1,    method_id::invfabcor_3,
      method_id::invfabcor_m_1,  method_id::invfabcor_m_3,
      method_id::invfabcor_m_3_eff, method_id::ls_ed,
      method_id::boson,          method_id::boson_no_reshape,
      method_id::boson_no_relax, method_id::boson_exhaustive,
      method_id::boson_random_init};
  return ids;
}

std::string method_name(method_id id) { return preset_recipe(id).label; }

bool method_uses_levelset(method_id id) {
  return preset_recipe(id).parameterization == "levelset";
}

std::string method_objective_override(method_id id) {
  return preset_recipe(id).objective_override;
}

// ----------------------------------------------------------------- config --

std::size_t experiment_config::scaled_iterations() const {
  return std::max<std::size_t>(4, static_cast<std::size_t>(std::lround(
                                      static_cast<double>(iterations) * scale)));
}

std::size_t experiment_config::scaled_samples() const {
  return std::max<std::size_t>(2, static_cast<std::size_t>(std::lround(
                                      static_cast<double>(mc_samples) * scale)));
}

std::size_t experiment_config::scaled_relax() const {
  return static_cast<std::size_t>(std::lround(static_cast<double>(relax_epochs) * scale));
}

experiment_config default_config() {
  experiment_config cfg;
  cfg.scale = env_double("BOSON_BENCH_SCALE", 1.0);
  cfg.seed = static_cast<std::uint64_t>(env_int("BOSON_SEED", 7));
  return cfg;
}

// --------------------------------------------------------------- problems --

design_problem make_problem(const dev::device_spec& spec, bool use_levelset,
                            const experiment_config& cfg, double density_blur_cells) {
  method_recipe recipe;
  recipe.parameterization = use_levelset ? "levelset" : "density";
  recipe.density_blur_cells = density_blur_cells;
  return make_problem(spec, recipe, cfg);
}

design_problem make_problem(const dev::device_spec& spec, const method_recipe& recipe,
                            const experiment_config& cfg) {
  const parameterization_policy policy =
      recipe_policies::global().parameterization.get(recipe.parameterization);
  // A null std::function would raise std::bad_function_call past the CLI's
  // bad_argument handling; fail with the policy name instead.
  require(policy.make != nullptr, "make_problem: parameterization policy '" +
                                      recipe.parameterization + "' has no factory");
  std::shared_ptr<param::parameterization> p = policy.make(spec, recipe, cfg);
  require(p != nullptr, "make_problem: parameterization policy '" +
                            recipe.parameterization + "' produced a null parameterization");
  fab_context fab = make_fab_context(spec, cfg.litho, cfg.eole, cfg.space);
  return design_problem(std::move(spec), std::move(p), std::move(fab));
}

// ---------------------------------------------------------- initializers --

dvec concentrated_init(const design_problem& problem) {
  const auto& field = problem.spec().init_signed_field;
  const auto* ls = dynamic_cast<const param::levelset_param*>(&problem.parameterization());
  if (ls != nullptr) return ls->fit_from_field(field);
  // Density: push sigmoid(theta) toward the binary target shape.
  dvec theta(field.size());
  for (std::size_t i = 0; i < field.size(); ++i)
    theta[i] = 4.0 * std::clamp(field.data()[i], -1.0, 1.0);
  return theta;
}

dvec gray_init(const design_problem& problem) {
  return dvec(problem.parameterization().num_params(), 0.0);
}

dvec random_init(const design_problem& problem, std::uint64_t seed) {
  rng r(seed);
  dvec theta(problem.parameterization().num_params());
  for (auto& t : theta) t = r.uniform(-0.5, 0.5);
  return theta;
}

array2d<double> binarize(const array2d<double>& rho, double threshold) {
  array2d<double> out(rho.nx(), rho.ny());
  for (std::size_t i = 0; i < rho.size(); ++i)
    out.data()[i] = rho.data()[i] > threshold ? 1.0 : 0.0;
  return out;
}

double relative_improvement(double baseline_fom, double our_fom, bool lower_better) {
  if (lower_better) {
    if (baseline_fom <= 0.0) return 0.0;
    return (baseline_fom - our_fom) / baseline_fom;
  }
  if (our_fom <= 0.0) return 0.0;
  return (our_fom - baseline_fom) / our_fom;
}

// ----------------------------------------------------------------- driver --

run_options resolved_run_options(const method_recipe& recipe,
                                 const experiment_config& cfg) {
  const recipe_policies& policies = recipe_policies::global();
  const corner_policy corners = policies.corners.get(recipe.corners);
  const relaxation_policy relaxation = policies.relaxation.get(recipe.relaxation);
  const reshaping_policy reshaping = policies.reshaping.get(recipe.reshaping);
  const beta_policy beta = policies.beta_schedule.get(recipe.beta_schedule);

  // Recipe-level optimizer overrides replace the config values *before*
  // BOSON_BENCH_SCALE, exactly as if the config had carried them.
  experiment_config effective = cfg;
  if (recipe.iterations > 0) effective.iterations = recipe.iterations;
  if (recipe.learning_rate > 0.0) effective.learning_rate = recipe.learning_rate;

  run_options ro;
  ro.iterations = effective.scaled_iterations();
  ro.learning_rate = effective.learning_rate;
  ro.fab_aware = corners.fab_aware;
  ro.dense_objectives = reshaping.dense_objectives;
  ro.use_mfs_blur = recipe.mfs_blur;
  ro.relax_epochs = relaxation.epochs ? relaxation.epochs(effective) : 0;
  ro.sampling = corners.sampling;
  ro.erosion_dilation = corners.erosion_dilation;
  ro.ed_radius_cells = recipe.ed_radius_cells;
  ro.tv_weight = recipe.tv_weight;
  ro.beta_start = recipe.beta_start;
  ro.beta_end = beta.ramp ? recipe.beta_end : recipe.beta_start;
  ro.seed = cfg.seed;
  ro.objective_override = recipe.objective_override.empty() ? cfg.objective_override
                                                            : recipe.objective_override;
  ro.engine = cfg.engine;
  ro.use_operator_cache = cfg.use_operator_cache;
  ro.record_trajectory = cfg.record_trajectory;
  return ro;
}

method_result run_method(const dev::device_spec& spec, const method_recipe& recipe,
                         const experiment_config& cfg, const method_hooks& hooks) {
  validate_recipe(recipe);
  run_options ro = resolved_run_options(recipe, cfg);
  require(ro.objective_override.empty() ||
              spec.objective.kind == dev::objective_kind::minimize_ratio,
          "run_method: the objective override only applies to ratio objectives "
          "(the isolator)");

  const std::size_t correction_corners =
      recipe_policies::global().mask_correction.get(recipe.mask_correction).litho_corners;
  const initialization_policy init =
      recipe_policies::global().initialization.get(recipe.initialization);

  design_problem problem = make_problem(spec, recipe, cfg);

  ro.on_iteration = hooks.on_iteration;
  ro.checkpoint_every = hooks.checkpoint_every;
  ro.on_checkpoint = hooks.on_checkpoint;
  ro.resume_state = hooks.resume;

  // The init stream is cfg.seed + 1 (the corner-sampling stream owns
  // cfg.seed, the Monte Carlo cfg.seed + 3); deterministic policies ignore it.
  require(init.make != nullptr, "run_method: initialization policy '" +
                                    recipe.initialization + "' has no generator");
  const dvec theta0 = init.make(problem, recipe, cfg.seed + 1);

  log_info("run_method[", spec.name, "]: ", recipe.label, " (", ro.iterations,
           " iterations)");
  const auto stage = [&](const char* name) {
    if (hooks.on_stage) hooks.on_stage(name);
  };

  stage("optimize");
  method_result out;
  out.method = recipe.label;
  out.run = run_inverse_design(problem, theta0, ro);

  // The design produced by the optimizer (pre-fab pattern).
  stage("prefab_eval");
  const array2d<double> design_binary = binarize(out.run.design_rho);
  out.prefab = prefab_metrics(problem, design_binary);
  out.prefab_fom = problem.fom_of(out.prefab);

  // The mask handed to fabrication.
  if (correction_corners > 0) {
    stage("mask_correction");
    mask_correction_options mo;
    mo.litho_corners = correction_corners;
    // ro.iterations already carries the recipe-level override + scaling, so
    // the correction budget tracks the optimizer budget.
    mo.iterations = std::max<std::size_t>(20, ro.iterations);
    const mask_correction_result corrected = correct_mask(problem, design_binary, mo);
    log_info("run_method[", spec.name, "]: mask correction mismatch ",
             corrected.initial_mismatch, " -> ", corrected.final_mismatch);
    out.mask = binarize(corrected.mask);
  } else {
    out.mask = design_binary;
  }

  if (hooks.run_postfab_mc) {
    stage("postfab_monte_carlo");
    out.postfab = postfab_monte_carlo(problem, out.mask, cfg.scaled_samples(),
                                      cfg.seed + 3, cfg.use_operator_cache);
    log_info("run_method[", spec.name, "]: ", recipe.label, " prefab FoM=",
             out.prefab_fom, " postfab FoM=", out.postfab.fom_mean);
  }
  return out;
}

method_result run_method(const dev::device_spec& spec, method_id id,
                         const experiment_config& cfg, const method_hooks& hooks) {
  return run_method(spec, preset_recipe(id), cfg, hooks);
}

}  // namespace boson::core
