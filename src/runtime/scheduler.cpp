#include "runtime/scheduler.h"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <mutex>
#include <system_error>
#include <thread>
#include <utility>

#include "common/log.h"
#include "common/timer.h"
#include "core/methods.h"
#include "runtime/checkpoint.h"
#include "runtime/journal.h"

namespace boson::runtime {

namespace {

namespace fs = std::filesystem;

/// Observer each job runs under: forwards to the worker's inner observer and
/// turns a cancel request into a `cancelled_error` at the next iteration or
/// stage boundary — never after the work already finished, so a cancel that
/// lands during final artifact writes does not discard a completed job.
class cancel_guard : public api::observer {
 public:
  cancel_guard(api::observer* inner, const std::atomic<bool>& flag)
      : inner_(inner), flag_(flag) {}

  void on_event(const api::progress_event& event) override {
    using phase = api::progress_event::phase;
    if (flag_.load() && (event.kind == phase::iteration_finished ||
                         event.kind == phase::stage_started))
      throw cancelled_error("job '" + event.experiment + "' cancelled");
    if (inner_ != nullptr) inner_->on_event(event);
  }

 private:
  api::observer* inner_;
  const std::atomic<bool>& flag_;
};

job_result_row make_row(const campaign_job& job, const api::experiment_result& result,
                        std::size_t attempt, double seconds) {
  job_result_row row;
  row.job_index = job.index;
  row.name = job.name;
  row.device = job.spec.device;
  row.method = job.spec.method;
  row.seed = job.spec.seed;
  row.prefab_fom = result.method.prefab_fom;
  row.postfab_samples = result.method.postfab.samples;
  row.postfab_mean = result.method.postfab.fom_mean;
  row.postfab_std = result.method.postfab.fom_std;
  row.postfab_min = result.method.postfab.fom_min;
  row.postfab_max = result.method.postfab.fom_max;
  row.seconds = seconds;
  row.attempt = attempt;
  row.artifact_dir = result.artifact_dir;
  row.recipe = api::resolved_recipe(job.spec).signature();
  return row;
}

}  // namespace

std::string journal_path(const std::string& campaign_dir) {
  return (fs::path(campaign_dir) / "journal.jsonl").string();
}

std::string campaign_spec_path(const std::string& campaign_dir) {
  return (fs::path(campaign_dir) / "campaign.json").string();
}

std::string job_directory(const std::string& campaign_dir, const std::string& job_name) {
  // api::artifact_name is the session's own sanitizer, so checkpoints land
  // in the exact directory the session writes the job's artifacts into.
  return (fs::path(campaign_dir) / "jobs" / api::artifact_name(job_name)).string();
}

scheduler::scheduler(campaign_spec spec, scheduler_options options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

scheduler_settings scheduler::effective_settings() const {
  scheduler_settings settings = spec_.scheduler;
  if (options_.workers) settings.workers = *options_.workers;
  if (options_.max_retries) settings.max_retries = *options_.max_retries;
  if (options_.checkpoint_every) settings.checkpoint_every = *options_.checkpoint_every;
  settings.workers = std::max<std::size_t>(1, settings.workers);
  return settings;
}

scheduler_report scheduler::run() {
  const stopwatch sw;
  // Each run starts un-cancelled: the documented re-run contract gives
  // previously cancelled jobs a fresh chance (cancel() during this run
  // still stops it).
  cancel_.store(false);
  const scheduler_settings settings = effective_settings();
  fs::create_directories(fs::path(options_.campaign_dir) / "jobs");

  const std::vector<campaign_job> all_jobs = spec_.expand();
  const auto latest =
      journal::latest_states(journal::replay(journal_path(options_.campaign_dir)));

  // This shard's slice, minus everything the journal already proved done.
  scheduler_report report;
  std::vector<const campaign_job*> pending;
  for (const campaign_job& job : all_jobs) {
    if (!options_.shard.contains(job.index)) continue;
    ++report.shard_jobs;
    const auto it = latest.find(job.index);
    if (it != latest.end() && it->second.state == job_state::completed) {
      ++report.skipped;
      continue;
    }
    pending.push_back(&job);
  }

  if (pending.empty()) {
    report.wall_seconds = sw.seconds();
    return report;
  }

  journal log(journal_path(options_.campaign_dir));
  result_store store(options_.campaign_dir);

  const auto journal_event = [&log](const campaign_job& job, job_state state,
                                    std::size_t attempt, const std::string& detail = "",
                                    double seconds = 0.0) {
    journal_entry e;
    e.job_index = job.index;
    e.job_name = job.name;
    e.state = state;
    e.attempt = attempt;
    e.detail = detail;
    e.seconds = seconds;
    log.append(e);
  };

  for (const campaign_job* job : pending)
    journal_event(*job, job_state::scheduled, 0, "shard " + options_.shard.to_string());

  std::mutex report_mutex;
  std::atomic<std::size_t> next{0};

  const auto execute_job = [&](const campaign_job& job, api::observer* watcher) {
    const auto it = latest.find(job.index);
    const std::size_t prior_attempts = it != latest.end() ? it->second.attempt : 0;
    const std::string dir = job_directory(options_.campaign_dir, job.name);

    // A fresh retry budget per scheduler run: resuming a crashed campaign
    // must not inherit exhausted budgets from the previous process.
    bool counted_resume = false;
    for (std::size_t try_index = 0; try_index <= settings.max_retries; ++try_index) {
      const std::size_t attempt = prior_attempts + try_index + 1;

      api::run_control control;
      if (settings.checkpoint_every > 0) {
        control.checkpoint_every = settings.checkpoint_every;
        control.on_checkpoint = [&journal_event, &job, dir,
                                 attempt](const core::run_checkpoint& ck) {
          save_checkpoint(dir, job.name, ck);
          journal_event(job, job_state::checkpointed, attempt,
                        "iteration " + std::to_string(ck.next_iteration) + "/" +
                            std::to_string(ck.total_iterations));
        };
      }

      // Restore any persisted snapshot — also when checkpointing is now
      // disabled, so `campaign resume` picks up mid-flight work regardless.
      std::string resume_note;
      const std::string snapshot = checkpoint_path(dir);
      if (fs::exists(snapshot)) {
        try {
          checkpoint_file file = load_checkpoint(snapshot);
          require(file.job == job.name,
                  "checkpoint belongs to job '" + file.job + "'");
          // A snapshot from a different effective run length (changed
          // BOSON_BENCH_SCALE, edited campaign) would be rejected by the
          // optimizer on every retry; discard it here so the job runs fresh
          // instead of burning its whole budget on the same dead state.
          // Resolve through the recipe: a recipe-level iterations override
          // changes the run length the checkpoints were captured under.
          const std::size_t expected =
              core::resolved_run_options(api::resolved_recipe(job.spec),
                                         api::session::config_for(job.spec))
                  .iterations;
          require(file.state.total_iterations == expected,
                  "checkpoint captured for " +
                      std::to_string(file.state.total_iterations) +
                      " iterations, the run expects " + std::to_string(expected));
          resume_note =
              "resume from iteration " + std::to_string(file.state.next_iteration);
          control.resume =
              std::make_shared<const core::run_checkpoint>(std::move(file.state));
        } catch (const std::exception& e) {
          log_warn("scheduler: discarding unusable checkpoint '", snapshot,
                   "': ", e.what());
          std::error_code ec;
          fs::remove(snapshot, ec);
        }
      }

      journal_event(job, job_state::running, attempt, resume_note);
      if (!resume_note.empty() && !counted_resume) {
        counted_resume = true;
        const std::lock_guard<std::mutex> lock(report_mutex);
        ++report.resumed;
      }

      const stopwatch job_sw;
      try {
        const api::experiment_result result =
            options_.executor ? options_.executor(job, control, watcher)
                              : execute_with_session(job, control, watcher);
        const job_result_row row = make_row(job, result, attempt, job_sw.seconds());
        store.append(row);  // row first, then the journal: "completed" implies stored
        journal_event(job, job_state::completed, attempt, "", row.seconds);
        std::error_code ec;
        fs::remove(snapshot, ec);
        fs::remove(fs::path(dir) / "checkpoint.pgm", ec);
        const std::lock_guard<std::mutex> lock(report_mutex);
        ++report.completed;
        report.rows.push_back(row);
        return;
      } catch (const cancelled_error& e) {
        journal_event(job, job_state::cancelled, attempt, e.what(), job_sw.seconds());
        const std::lock_guard<std::mutex> lock(report_mutex);
        ++report.cancelled;
        return;  // cancellation is not a failure: no retry
      } catch (const io_error&) {
        // Durability (journal/store/checkpoint) or artifact IO died — disk
        // full, permissions. Re-running the simulation cannot fix that and
        // its outcome could not be made durable anyway: escalate so
        // worker_main stops the whole campaign instead of burning
        // retries x simulation time per job.
        throw;
      } catch (const std::exception& e) {
        // A checkpoint the optimizer itself refused (e.g. the spec changed
        // between runs in a way the proactive validation above misses) is
        // unusable: drop it so the retry — or a later resume — runs fresh.
        if (control.resume != nullptr && dynamic_cast<const bad_argument*>(&e) != nullptr &&
            std::string(e.what()).find("resume checkpoint") != std::string::npos) {
          log_warn("scheduler: discarding checkpoint the optimizer refused ('",
                   e.what(), "')");
          std::error_code ec;
          fs::remove(snapshot, ec);
        }
        journal_event(job, job_state::failed, attempt, e.what(), job_sw.seconds());
        if (try_index == settings.max_retries) {
          const std::lock_guard<std::mutex> lock(report_mutex);
          ++report.failed;
          report.errors.push_back(job.name + ": " + e.what());
        } else {
          log_warn("scheduler: job '", job.name, "' attempt ", attempt, " failed (",
                   e.what(), "); retrying");
        }
      }
    }
  };

  const auto worker_main = [&](std::size_t worker_id) {
    api::log_observer tagged("[" + options_.shard.to_string() + ".w" +
                             std::to_string(worker_id) + "] ");
    api::observer* inner = options_.watcher != nullptr ? options_.watcher : &tagged;
    cancel_guard guard(inner, cancel_);

    while (!cancel_.load()) {
      const std::size_t i = next.fetch_add(1);
      if (i >= pending.size()) break;
      try {
        execute_job(*pending[i], &guard);
      } catch (const std::exception& e) {
        // Journal/store IO died: stop the campaign rather than run jobs
        // whose outcomes cannot be made durable.
        cancel_.store(true);
        const std::lock_guard<std::mutex> lock(report_mutex);
        report.errors.push_back(std::string("scheduler worker: ") + e.what());
      }
    }
  };

  const std::size_t worker_count = std::min(settings.workers, pending.size());
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) workers.emplace_back(worker_main, w);
  for (std::thread& t : workers) t.join();

  report.wall_seconds = sw.seconds();
  log_info("scheduler[", spec_.name, " ", options_.shard.to_string(), "]: ",
           report.completed, " completed, ", report.skipped, " skipped, ",
           report.failed, " failed, ", report.cancelled, " cancelled in ",
           report.wall_seconds, " s");
  return report;
}

api::experiment_result scheduler::execute_with_session(const campaign_job& job,
                                                       const api::run_control& control,
                                                       api::observer* watcher) {
  api::session_options so;
  so.output_dir = (fs::path(options_.campaign_dir) / "jobs").string();
  so.write_artifacts = options_.write_artifacts;
  so.watcher = watcher;
  api::session session(so);
  return session.run(job.spec, control);
}

}  // namespace boson::runtime
