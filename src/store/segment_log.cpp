#include "store/segment_log.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "io/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fs = std::filesystem;

namespace boson::store {

namespace {

constexpr std::uint64_t kOffsetBits = 33;  ///< < 8 GiB per segment
constexpr std::uint64_t kOffsetMask = (std::uint64_t(1) << kOffsetBits) - 1;

std::function<void(const char*)> g_crash_hook;
std::mutex g_crash_mutex;

void crash_point(const char* point) {
  std::function<void(const char*)> hook;
  {
    const std::lock_guard<std::mutex> lock(g_crash_mutex);
    hook = g_crash_hook;
  }
  if (hook) hook(point);
}

std::string manifest_file(const std::string& dir) {
  return (fs::path(dir) / "manifest.jsonl").string();
}

std::string lock_file(const std::string& dir) {
  return (fs::path(dir) / "lock").string();
}

std::string segment_file(const std::string& dir, std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof name, "segment-%06llu.jsonl",
                static_cast<unsigned long long>(seq));
  return (fs::path(dir) / name).string();
}

void write_fully(int fd, const std::string& bytes, const std::string& label,
                 const std::string& path) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw io_error(label + ": append to '" + path + "' failed");
    }
    written += static_cast<std::size_t>(n);
  }
}

std::uintmax_t fd_size(int fd) {
  struct stat st {};
  return ::fstat(fd, &st) == 0 ? static_cast<std::uintmax_t>(st.st_size) : 0;
}

/// Truncate a crash-torn trailing fragment (no final newline) away, so a
/// fresh append cannot merge into it — the same heal-on-open contract as
/// `runtime::jsonl_appender`. Callers hold the exclusive lock.
void heal_file(const std::string& path, const std::string& label) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  if (text.empty() || text.back() == '\n') return;
  const std::size_t cut = text.find_last_of('\n');
  const std::uintmax_t keep = cut == std::string::npos ? 0 : cut + 1;
  log_warn(label, ": dropping torn trailing fragment of '", path, "' (",
           text.size() - keep, " bytes)");
  std::error_code ec;
  fs::resize_file(path, keep, ec);
  if (ec) throw io_error(label + ": cannot truncate torn tail of '" + path + "'");
}

bool blank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

void set_crash_hook(std::function<void(const char*)> hook) {
  const std::lock_guard<std::mutex> lock(g_crash_mutex);
  g_crash_hook = std::move(hook);
}

std::uint64_t encode_cursor(std::uint64_t seq, std::uint64_t offset) {
  return ((seq + 1) << kOffsetBits) | (offset & kOffsetMask);
}

void decode_cursor(std::uint64_t cursor, std::uint64_t& seq, std::uint64_t& offset) {
  seq = (cursor >> kOffsetBits) - 1;
  offset = cursor & kOffsetMask;
}

// --------------------------------------------------------------- manifest --

/// The fold of `manifest.jsonl`: the current segment chain (replay order;
/// last entry is the active tail), which seqs were compacted into which
/// snapshot, the next seq to mint, and the creator's configuration.
struct manifest_state {
  std::vector<std::uint64_t> chain;
  std::map<std::uint64_t, std::uint64_t> compacted;  ///< seq -> covering snapshot
  std::uint64_t next_seq = 0;
  log_options config;
  bool has_config = false;

  bool in_chain(std::uint64_t seq) const {
    return std::find(chain.begin(), chain.end(), seq) != chain.end();
  }

  /// Resolve a cursor's seq to its chain position: the seq itself when it
  /// still exists, else the snapshot that covers it (transitively). Returns
  /// the chain index, with `restart` set when the caller must re-read from
  /// the segment's start (at-least-once re-delivery after compaction).
  std::size_t resolve(std::uint64_t seq, bool& restart, const std::string& label) const {
    restart = false;
    std::uint64_t s = seq;
    while (!in_chain(s)) {
      const auto it = compacted.find(s);
      if (it == compacted.end())
        throw io_error(label + ": cursor references unknown segment " +
                       std::to_string(seq));
      s = it->second;
      restart = true;
    }
    return static_cast<std::size_t>(
        std::find(chain.begin(), chain.end(), s) - chain.begin());
  }
};

namespace {

/// Fold the manifest with the shared torn-tail contract: a malformed final
/// line (a writer died mid-append) is ignored; corruption with a successor
/// throws.
manifest_state fold_manifest(const std::string& dir, const std::string& label) {
  manifest_state state;
  std::ifstream in(manifest_file(dir), std::ios::binary);
  if (!in) return state;

  std::string line;
  std::size_t line_number = 0;
  std::string pending_error;
  while (std::getline(in, line)) {
    if (in.eof()) break;  // torn tail: ignore
    ++line_number;
    if (!pending_error.empty()) throw io_error(pending_error);
    if (blank(line)) continue;
    try {
      const io::json_value v = io::json_value::parse(line);
      const std::string op = v.at("op").as_string();
      if (op == "config") {
        if (const io::json_value* b = v.find("segment_bytes"))
          state.config.segment_bytes = static_cast<std::size_t>(b->as_number());
        if (const io::json_value* r = v.find("segment_records"))
          state.config.segment_records = static_cast<std::size_t>(r->as_number());
        if (const io::json_value* c = v.find("compact_segments"))
          state.config.compact_segments = static_cast<std::size_t>(c->as_number());
        state.has_config = true;
      } else if (op == "open") {
        const auto seq = static_cast<std::uint64_t>(v.at("seq").as_number());
        state.next_seq = std::max(state.next_seq, seq + 1);
        if (!state.in_chain(seq) && !state.compacted.count(seq))
          state.chain.push_back(seq);
      } else if (op == "compact") {
        const auto snap = static_cast<std::uint64_t>(v.at("seq").as_number());
        const auto first = static_cast<std::uint64_t>(v.at("first").as_number());
        const auto last = static_cast<std::uint64_t>(v.at("last").as_number());
        state.next_seq = std::max(state.next_seq, snap + 1);
        const auto a = std::find(state.chain.begin(), state.chain.end(), first);
        const auto b = std::find(state.chain.begin(), state.chain.end(), last);
        if (a != state.chain.end() && b != state.chain.end() && a <= b) {
          for (auto it = a; it != b + 1; ++it) state.compacted[*it] = snap;
          const auto pos = state.chain.erase(a, b + 1);
          state.chain.insert(pos, snap);
        }
      } else {
        throw bad_argument("unknown manifest op '" + op + "'");
      }
    } catch (const error& e) {
      pending_error = label + ": manifest '" + manifest_file(dir) + "' line " +
                      std::to_string(line_number) + ": " + e.what();
    }
  }
  return state;
}

/// Read complete, non-blank lines of the chain after `cursor`, advancing a
/// per-line cursor. The shared core of the static and instance readers.
read_batch read_chain(const std::string& dir, const std::string& label,
                      const manifest_state& state, std::uint64_t cursor,
                      std::size_t max_lines) {
  read_batch batch;
  batch.end_cursor = cursor;
  if (state.chain.empty()) return batch;

  std::size_t index = 0;
  std::uint64_t offset = 0;
  if (cursor != 0) {
    std::uint64_t seq = 0;
    bool restart = false;
    decode_cursor(cursor, seq, offset);
    index = state.resolve(seq, restart, label);
    if (restart) offset = 0;  // compacted away: re-read the covering snapshot
  }

  for (; index < state.chain.size(); ++index) {
    const std::uint64_t seq = state.chain[index];
    std::uint64_t consumed = offset;
    offset = 0;
    std::ifstream in(segment_file(dir, seq), std::ios::binary);
    if (in) {
      in.seekg(static_cast<std::streamoff>(consumed));
      std::string line;
      while (std::getline(in, line)) {
        // No trailing newline: a torn tail or a racing writer's append seen
        // mid-flush — it stays ahead of the cursor for the next poll.
        if (in.eof()) return batch;
        consumed += static_cast<std::uint64_t>(line.size()) + 1;
        batch.end_cursor = encode_cursor(seq, consumed);
        if (blank(line)) continue;
        batch.lines.push_back(line);
        batch.cursors.push_back(batch.end_cursor);
        if (max_lines != 0 && batch.lines.size() >= max_lines) return batch;
      }
    }
    // Segment drained cleanly. A sealed segment hands over to its successor;
    // the active (last) one is simply the end of the log for now.
    if (index + 1 < state.chain.size())
      batch.end_cursor = encode_cursor(state.chain[index + 1], 0);
    else
      batch.end_cursor = encode_cursor(seq, consumed);
  }
  return batch;
}

/// RAII over a standalone lock fd for the static readers.
class shared_dir_lock {
 public:
  explicit shared_dir_lock(const std::string& dir, const std::string& label) {
    fd_ = ::open(lock_file(dir).c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) throw io_error(label + ": cannot open '" + lock_file(dir) + "'");
    while (::flock(fd_, LOCK_SH) != 0)
      if (errno != EINTR) throw io_error(label + ": cannot lock '" + dir + "'");
  }
  ~shared_dir_lock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }

 private:
  int fd_ = -1;
};

}  // namespace

// ------------------------------------------------------------ segment_log --

bool segment_log::is_store_dir(const std::string& path) {
  std::error_code ec;
  return fs::exists(manifest_file(path), ec);
}

segment_log::segment_log(std::string dir, log_options opts, std::string label)
    : dir_(std::move(dir)), label_(std::move(label)), opts_(opts) {
  require(!dir_.empty(), label_ + ": store directory must not be empty");
  fs::create_directories(dir_);
  lock_fd_ = ::open(lock_file(dir_).c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd_ < 0)
    throw io_error(label_ + ": cannot open '" + lock_file(dir_) + "'");

  const std::lock_guard<std::recursive_mutex> guard(mutex_);
  acquire(true);
  try {
    if (!is_store_dir(dir_)) {
      // Creator: record the configuration for attachers, then open segment 0.
      state_ = std::make_unique<manifest_state>();
      io::json_value config = io::json_value::object();
      config["op"] = "config";
      config["segment_bytes"] = opts_.segment_bytes;
      config["segment_records"] = opts_.segment_records;
      config["compact_segments"] = opts_.compact_segments;
      append_manifest_locked(config.dump(-1));
      io::json_value open_record = io::json_value::object();
      open_record["op"] = "open";
      open_record["seq"] = 0;
      append_manifest_locked(open_record.dump(-1));
    }
    manifest_bytes_ = static_cast<std::uintmax_t>(-1);  // force the first fold
    refresh_locked();
    // Attachers with unconfigured options adopt the creator's, so external
    // workers joining a shared data root rotate/compact the same way.
    if (state_->has_config) {
      if (opts_.segment_bytes == 0) opts_.segment_bytes = state_->config.segment_bytes;
      if (opts_.segment_records == 0)
        opts_.segment_records = state_->config.segment_records;
      if (opts_.compact_segments == 0)
        opts_.compact_segments = state_->config.compact_segments;
    }
    heal_active_locked();
    gc_locked();
  } catch (...) {
    release();
    ::close(lock_fd_);
    throw;
  }
  release();
}

segment_log::~segment_log() {
  if (active_fd_ >= 0) ::close(active_fd_);
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

void segment_log::acquire(bool exclusive) {
  if (lock_depth_ > 0) {
    // Nesting only ever asks for the same or a weaker lock (append/read
    // inside with_exclusive) — an upgrade here would silently drop LOCK_EX.
    require(lock_exclusive_ || !exclusive,
            label_ + ": lock upgrade inside a held section is not supported");
    ++lock_depth_;
    return;
  }
  while (::flock(lock_fd_, exclusive ? LOCK_EX : LOCK_SH) != 0)
    if (errno != EINTR) throw io_error(label_ + ": cannot lock '" + dir_ + "'");
  lock_exclusive_ = exclusive;
  lock_depth_ = 1;
}

void segment_log::release() {
  if (--lock_depth_ == 0) {
    ::flock(lock_fd_, LOCK_UN);
    lock_exclusive_ = false;
  }
}

void segment_log::refresh_locked() {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(manifest_file(dir_), ec);
  if (!state_ || ec || size != manifest_bytes_) {
    state_ = std::make_unique<manifest_state>(fold_manifest(dir_, label_));
    manifest_bytes_ = ec ? 0 : size;
    if (state_->chain.empty())
      throw io_error(label_ + ": manifest '" + manifest_file(dir_) +
                     "' has no open segment");
    if (active_fd_ >= 0 && active_seq_ != state_->chain.back()) {
      ::close(active_fd_);
      active_fd_ = -1;
    }
  }
}

bool segment_log::ensure_active_locked() {
  const std::uint64_t seq = state_->chain.back();
  if (active_fd_ >= 0 && active_seq_ == seq) {
    // fstat picks up other processes' appends, so rotation thresholds see
    // the segment's true size, not just our own contribution.
    active_bytes_ = static_cast<std::size_t>(fd_size(active_fd_));
    return true;
  }
  if (active_fd_ >= 0) ::close(active_fd_);
  active_fd_ = -1;

  const std::string path = segment_file(dir_, seq);
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) throw io_error(label_ + ": cannot open '" + path + "' for appending");

  // Heal-on-open: a torn tail means a writer died mid-append; truncating it
  // requires the exclusive lock, so report and let append() upgrade.
  std::size_t records = 0;
  std::size_t bytes = 0;
  bool torn = false;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      const std::string text((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
      bytes = text.size();
      records = static_cast<std::size_t>(
          std::count(text.begin(), text.end(), '\n'));
      torn = !text.empty() && text.back() != '\n';
    }
  }
  if (torn) {
    ::close(fd);
    return false;
  }
  active_fd_ = fd;
  active_seq_ = seq;
  active_bytes_ = bytes;
  active_records_ = records;
  return true;
}

void segment_log::heal_active_locked() {
  heal_file(segment_file(dir_, state_->chain.back()), label_);
  if (active_fd_ >= 0) {
    ::close(active_fd_);  // cached size/count are stale after a truncation
    active_fd_ = -1;
  }
}

void segment_log::append(const std::string& line) {
  const std::lock_guard<std::recursive_mutex> guard(mutex_);
  const std::string data = line + "\n";
  bool want_rotate = false;
  for (;;) {
    acquire(false);
    try {
      refresh_locked();
      if (!ensure_active_locked()) {
        if (!lock_exclusive_) {
          release();
          acquire(true);
          refresh_locked();
          heal_active_locked();
          release();
          continue;  // retry under a fresh shared lock
        }
        heal_active_locked();
        require(ensure_active_locked(), label_ + ": active segment did not heal");
      }
      write_fully(active_fd_, data, label_, segment_file(dir_, active_seq_));
      active_bytes_ += data.size();
      ++active_records_;
      want_rotate =
          (opts_.segment_bytes != 0 && active_bytes_ >= opts_.segment_bytes) ||
          (opts_.segment_records != 0 && active_records_ >= opts_.segment_records);
    } catch (...) {
      release();
      throw;
    }
    release();
    break;
  }
  obs::registry::global().get_counter("store.appends", {{"log", label_}}).inc();

  if (want_rotate) {
    acquire(true);
    try {
      refresh_locked();
      // Re-check: another process may have rotated while we waited.
      if (ensure_active_locked() &&
          ((opts_.segment_bytes != 0 && active_bytes_ >= opts_.segment_bytes) ||
           (opts_.segment_records != 0 && active_records_ >= opts_.segment_records)))
        rotate_locked();
    } catch (...) {
      release();
      throw;
    }
    release();
  }
}

void segment_log::rotate_locked() {
  obs::span span("store.rotate", "store");
  // Seal the tail torn-free: sealed segments are immutable and must replay
  // without the torn-tail escape hatch.
  heal_active_locked();
  crash_point("rotate:before_manifest");
  io::json_value record = io::json_value::object();
  record["op"] = "open";
  record["seq"] = static_cast<double>(state_->next_seq);
  append_manifest_locked(record.dump(-1));
  crash_point("rotate:after_manifest");
  manifest_bytes_ = static_cast<std::uintmax_t>(-1);
  refresh_locked();
  obs::registry::global().get_counter("store.rotations", {{"log", label_}}).inc();
  log_debug(label_, ": rotated to segment ", state_->chain.back(), " in '", dir_, "'");
}

void segment_log::append_manifest_locked(const std::string& line) {
  const std::string path = manifest_file(dir_);
  heal_file(path, label_);  // a manifest writer died mid-append
  // O_RDWR, not O_WRONLY: the verification pread below reads through the
  // same fd.
  const int fd = ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) throw io_error(label_ + ": cannot open '" + path + "' for appending");
  const std::uintmax_t before = fd_size(fd);
  const std::string data = line + "\n";
  try {
    write_fully(fd, data, label_, path);
    // Append-then-verify: read our record back from where it must have
    // landed. Under the exclusive lock a mismatch means the write was torn
    // or the filesystem lied — either way the manifest must not be trusted.
    std::string check(data.size(), '\0');
    const ssize_t n = ::pread(fd, check.data(), check.size(),
                              static_cast<off_t>(before));
    if (n != static_cast<ssize_t>(check.size()) || check != data)
      throw io_error(label_ + ": manifest append verification failed in '" + path + "'");
    if (::fsync(fd) != 0)
      throw io_error(label_ + ": cannot fsync '" + path + "'");
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

std::size_t segment_log::gc_locked() {
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("segment-", 0) != 0) continue;
    bool unreferenced = false;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      unreferenced = true;  // an interrupted compaction's snapshot draft
    } else {
      const std::size_t dot = name.find(".jsonl");
      if (dot == std::string::npos) continue;
      const std::string digits = name.substr(8, dot - 8);
      if (digits.empty() ||
          digits.find_first_not_of("0123456789") != std::string::npos)
        continue;
      const std::uint64_t seq = std::stoull(digits);
      // Every live segment is in the chain; anything else is either a
      // compacted-away segment or an orphan snapshot whose manifest record
      // never landed. Both are duplicates of chain data — reclaim them
      // before their seq could ever be confused with a fresh mint.
      unreferenced = !state_->in_chain(seq);
    }
    if (unreferenced) {
      std::error_code rm;
      if (fs::remove(entry.path(), rm)) ++removed;
    }
  }
  if (removed > 0)
    obs::registry::global()
        .get_counter("store.segments_gc", {{"log", label_}})
        .inc(removed);
  return removed;
}

void segment_log::with_exclusive(const std::function<void()>& fn) {
  const std::lock_guard<std::recursive_mutex> guard(mutex_);
  acquire(true);
  try {
    refresh_locked();
    fn();
  } catch (...) {
    release();
    throw;
  }
  release();
}

bool segment_log::should_compact() {
  if (opts_.compact_segments == 0) return false;
  const std::lock_guard<std::recursive_mutex> guard(mutex_);
  acquire(false);
  std::size_t sealed = 0;
  try {
    refresh_locked();
    sealed = state_->chain.size() - 1;
  } catch (...) {
    release();
    throw;
  }
  release();
  return sealed >= opts_.compact_segments;
}

std::size_t segment_log::segment_count() {
  const std::lock_guard<std::recursive_mutex> guard(mutex_);
  acquire(false);
  std::size_t count = 0;
  try {
    refresh_locked();
    count = state_->chain.size();
  } catch (...) {
    release();
    throw;
  }
  release();
  return count;
}

std::size_t segment_log::compact(const compaction_fold& fold) {
  obs::span span("store.compact", "store");
  const std::lock_guard<std::recursive_mutex> guard(mutex_);
  acquire(true);
  std::size_t dropped = 0;
  try {
    refresh_locked();
    if (state_->chain.size() < 2) {
      release();
      return 0;  // nothing sealed to fold
    }
    const std::vector<std::uint64_t> sealed(state_->chain.begin(),
                                            state_->chain.end() - 1);

    std::vector<std::string> input;
    for (const std::uint64_t seq : sealed) {
      std::ifstream in(segment_file(dir_, seq), std::ios::binary);
      if (!in) continue;  // an empty segment that was never written to
      std::string line;
      while (std::getline(in, line)) {
        if (in.eof()) break;  // sealed segments are healed; be defensive
        if (!blank(line)) input.push_back(line);
      }
    }

    std::vector<std::string> kept = fold(input);
    if (kept.size() > input.size())
      throw io_error(label_ + ": compaction fold grew the history (" +
                     std::to_string(input.size()) + " -> " +
                     std::to_string(kept.size()) + " records)");

    crash_point("compact:before_tmp");
    const std::uint64_t snap = state_->next_seq;
    const std::string snap_path = segment_file(dir_, snap);
    const std::string tmp_path = snap_path + ".tmp";
    {
      const int fd =
          ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
      if (fd < 0) throw io_error(label_ + ": cannot write '" + tmp_path + "'");
      try {
        std::string body;
        for (const std::string& line : kept) body += line + "\n";
        write_fully(fd, body, label_, tmp_path);
        if (::fsync(fd) != 0)
          throw io_error(label_ + ": cannot fsync '" + tmp_path + "'");
      } catch (...) {
        ::close(fd);
        throw;
      }
      ::close(fd);
    }
    crash_point("compact:after_tmp");
    fs::rename(tmp_path, snap_path);
    crash_point("compact:before_manifest");

    io::json_value record = io::json_value::object();
    record["op"] = "compact";
    record["seq"] = static_cast<double>(snap);
    record["first"] = static_cast<double>(sealed.front());
    record["last"] = static_cast<double>(sealed.back());
    record["in"] = input.size();
    record["kept"] = kept.size();
    append_manifest_locked(record.dump(-1));
    crash_point("compact:after_manifest");

    manifest_bytes_ = static_cast<std::uintmax_t>(-1);
    refresh_locked();
    gc_locked();

    dropped = input.size() - kept.size();
    auto& reg = obs::registry::global();
    reg.get_counter("store.compactions", {{"log", label_}}).inc();
    reg.get_counter("store.compaction_records_in", {{"log", label_}}).inc(input.size());
    reg.get_counter("store.compaction_records_out", {{"log", label_}}).inc(kept.size());
    log_info(label_, ": compacted ", sealed.size(), " segments (", input.size(),
             " -> ", kept.size(), " records) into segment ", snap, " in '", dir_, "'");
  } catch (...) {
    release();
    throw;
  }
  release();
  return dropped;
}

read_batch segment_log::read_since(std::uint64_t cursor, std::size_t max_lines) {
  const std::lock_guard<std::recursive_mutex> guard(mutex_);
  acquire(false);
  read_batch batch;
  try {
    refresh_locked();
    batch = read_chain(dir_, label_, *state_, cursor, max_lines);
  } catch (...) {
    release();
    throw;
  }
  release();
  return batch;
}

std::vector<std::string> segment_log::read_all(const std::string& dir,
                                               const std::string& label) {
  return read_since_dir(dir, label, 0, 0).lines;
}

read_batch segment_log::read_since_dir(const std::string& dir,
                                       const std::string& label,
                                       std::uint64_t cursor, std::size_t max_lines) {
  read_batch batch;
  batch.end_cursor = cursor;
  if (!is_store_dir(dir)) return batch;  // no store yet: empty history
  const shared_dir_lock lock(dir, label);
  const manifest_state state = fold_manifest(dir, label);
  if (state.chain.empty()) return batch;
  return read_chain(dir, label, state, cursor, max_lines);
}

}  // namespace boson::store
