/// \file engine.h
/// The simulation engine: one assembled FDFD operator (grid + PML + k0 +
/// permittivity) prepared behind a pluggable linear backend. The engine
/// batches all excitations and adjoints of one variation corner through a
/// single preparation (multi-RHS substitution on the banded path), and is
/// immutable after construction so `engine_cache` can share one instance
/// across threads.

#pragma once

#include <memory>
#include <vector>

#include "common/array2d.h"
#include "common/types.h"
#include "fdfd/solver.h"
#include "grid/grid2d.h"
#include "grid/pml.h"
#include "sim/backend.h"

namespace boson::sim {

/// One prepared FDFD simulation: operator state plus a ready linear backend.
/// All solve methods are const and thread-safe; construction does the
/// expensive work (assembly + factorization / ILU setup) eagerly.
class simulation_engine {
 public:
  simulation_engine(const grid2d& grid, const pml_spec& pml, double k0,
                    const array2d<double>& eps, engine_settings settings = {});

  /// Nearby-operator reuse: prepare `eps` without factoring it, serving
  /// solves through `nominal`'s banded LU as the preconditioner of a short
  /// GMRES outer loop (see `make_nearby_backend`). Grid, PML, k0 and
  /// settings are inherited from the nominal engine, which is kept alive
  /// for the lifetime of this one.
  simulation_engine(std::shared_ptr<const simulation_engine> nominal,
                    const array2d<double>& eps);

  ~simulation_engine();

  simulation_engine(const simulation_engine&) = delete;
  simulation_engine& operator=(const simulation_engine&) = delete;

  const grid2d& grid() const { return solver_.grid(); }
  const pml_spec& pml() const { return pml_; }
  double k0() const { return solver_.k0(); }
  const array2d<double>& eps() const { return solver_.eps(); }
  const engine_settings& settings() const { return settings_; }
  const char* backend_name() const { return backend_->name(); }

  /// The wrapped FDFD solver (stretch profiles, CSR assembly, gradients).
  const fdfd::fdfd_solver& solver() const { return solver_; }

  /// True when this engine serves a perturbed operator off a nominal
  /// preparation instead of its own factorization.
  bool is_reuse() const { return nominal_ != nullptr; }

  /// The nominal engine backing the reuse path (null for a full preparation).
  const std::shared_ptr<const simulation_engine>& nominal() const { return nominal_; }

  /// Solve A e = b for one current-density excitation.
  array2d<cplx> solve_excitation(const array2d<cplx>& current_density) const;

  /// Batched forward solves: one field per excitation, all pushed through
  /// the prepared operator together.
  std::vector<array2d<cplx>> solve_excitations(
      const std::vector<array2d<cplx>>& current_densities) const;

  /// Solve the adjoint system A lambda = g for one sparse field gradient.
  array2d<cplx> solve_adjoint(const fdfd::field_gradient& g) const;

  /// Batched adjoint solves for the monitor gradients of one corner.
  std::vector<array2d<cplx>> solve_adjoints(
      const std::vector<fdfd::field_gradient>& gradients) const;

  /// Accumulate dF/deps from one (forward, adjoint) field pair.
  void accumulate_eps_gradient(const array2d<cplx>& field,
                               const array2d<cplx>& adjoint_field,
                               array2d<double>& grad) const {
    solver_.accumulate_eps_gradient(field, adjoint_field, grad);
  }

 private:
  std::vector<array2d<cplx>> solve_batch(std::vector<cvec> rhs) const;

  pml_spec pml_;
  engine_settings settings_;
  fdfd::fdfd_solver solver_;
  std::shared_ptr<const simulation_engine> nominal_;
  std::unique_ptr<linear_backend> backend_;

  /// Small FIFO memo of recently solved batches: warm Monte-Carlo samples
  /// and repeated corners re-issue bit-identical right-hand sides on the
  /// same engine, and the memo answers them without touching the backend.
  /// Gated on `settings_.reuse` and the BOSON_SIM_REUSE kill switch.
  struct batch_memo;
  std::unique_ptr<batch_memo> memo_;
};

}  // namespace boson::sim
