#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace boson::modes {

/// A guided eigenmode of a 1-D permittivity cross-section (slab waveguide).
///
/// The scalar 2-D model solves phi'' + k0^2 eps(y) phi = beta^2 phi; guided
/// solutions satisfy k0^2 eps_clad < beta^2 <= k0^2 eps_max. Following the
/// paper we label modes TM1, TM2, ... in order of decreasing beta (TM1 is the
/// fundamental).
struct slab_mode {
  double beta = 0.0;   ///< propagation constant [rad/um]
  double neff = 0.0;   ///< effective index beta / k0
  dvec profile;        ///< field samples; sum(profile^2) * d == 1
  int order = 0;       ///< 1-based label (TM1 == 1)
};

/// Solve for the guided modes of the cross-section `eps` sampled with spacing
/// `d` at free-space wavenumber `k0` (Dirichlet ends, which is accurate when
/// the line terminates in cladding well away from the core).
/// Returns at most `max_modes` modes, strongest confinement first.
std::vector<slab_mode> solve_slab_modes(const dvec& eps, double d, double k0,
                                        std::size_t max_modes = 8);

/// Power carried per unit squared amplitude of a mode. In the continuum this
/// is beta / (2 k0); on the FDFD grid the discrete dispersion reduces the
/// flux of a propagating wave by sqrt(1 - (beta d)^2 / 4), where d is the
/// grid spacing along propagation. Using the discrete factor keeps modal
/// powers consistent with Poynting-flux monitors to second order.
double mode_power_factor(const slab_mode& mode, double k0, double normal_spacing = 0.0);

}  // namespace boson::modes
