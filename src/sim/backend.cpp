#include "sim/backend.h"

#include <algorithm>
#include <cctype>

#include "common/env.h"
#include "common/error.h"
#include "fdfd/solver.h"
#include "sparse/banded.h"
#include "sparse/csr.h"
#include "sparse/krylov.h"

namespace boson::sim {

const char* to_string(backend_kind kind) {
  switch (kind) {
    case backend_kind::banded: return "banded";
    case backend_kind::bicgstab: return "bicgstab";
    case backend_kind::gmres: return "gmres";
  }
  return "?";
}

backend_kind backend_from_string(const std::string& name) {
  std::string s = name;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (s == "banded" || s == "direct" || s == "lu") return backend_kind::banded;
  if (s == "bicgstab") return backend_kind::bicgstab;
  if (s == "gmres") return backend_kind::gmres;
  throw bad_argument("unknown backend '" + name +
                     "' (expected banded|direct|lu|bicgstab|gmres)");
}

backend_kind default_backend() {
  const std::string name = env_string("BOSON_BACKEND", "banded");
  return backend_from_string(name);
}

namespace {

/// Direct path: the solver's own banded LU, shared by every excitation and
/// adjoint of the corner through the blocked multi-RHS substitution.
class banded_backend final : public linear_backend {
 public:
  explicit banded_backend(const fdfd::fdfd_solver& solver) : solver_(solver) {
    (void)solver_.factorization();  // factor eagerly so solves are thread-safe
  }

  const char* name() const override { return "banded"; }

  std::vector<cvec> solve(const std::vector<cvec>& rhs) const override {
    return solver_.factorization().solve(rhs);
  }

 private:
  const fdfd::fdfd_solver& solver_;
};

/// Iterative path: CSR operator + ILU(0), BiCGSTAB or restarted GMRES.
class krylov_backend final : public linear_backend {
 public:
  krylov_backend(const fdfd::fdfd_solver& solver, const engine_settings& settings)
      : settings_(settings), a_(solver.assemble_csr()), precond_(a_) {}

  const char* name() const override { return to_string(settings_.backend); }

  std::vector<cvec> solve(const std::vector<cvec>& rhs) const override {
    std::vector<cvec> xs(rhs.size());
    for (std::size_t k = 0; k < rhs.size(); ++k) {
      cvec x;
      const sp::krylov_result res =
          settings_.backend == backend_kind::gmres
              ? sp::gmres(a_, rhs[k], x, &precond_, settings_.gmres_restart,
                          settings_.tol, settings_.max_iterations)
              : sp::bicgstab(a_, rhs[k], x, &precond_, settings_.tol,
                             settings_.max_iterations);
      check_numeric(res.converged,
                    std::string(name()) + " backend failed to converge (residual " +
                        std::to_string(res.relative_residual) + ")");
      xs[k] = std::move(x);
    }
    return xs;
  }

 private:
  engine_settings settings_;
  sp::csr_c a_;
  sp::ilu0 precond_;
};

}  // namespace

std::unique_ptr<linear_backend> make_backend(const fdfd::fdfd_solver& solver,
                                             const engine_settings& settings) {
  if (settings.backend == backend_kind::banded)
    return std::make_unique<banded_backend>(solver);
  return std::make_unique<krylov_backend>(solver, settings);
}

}  // namespace boson::sim
